"""Unified run-session API: one options object for every kernel runner.

Every DES entry point in this repo answers two separate questions:
*what* to execute (an operator, a vector, a block shape — the program)
and *how* to execute it (which stepping engine, how many shard workers,
whether to race-sanitize, observe, or profile).  Historically the
"how" leaked into each runner as an ad-hoc kwarg set (``engine=``,
``analyze=``, ``obs=``) that drifted between entry points; with the
sharded engine adding ``workers=`` the drift would have doubled.

:class:`RunOptions` freezes the "how" into a single validated value
object, and :class:`Session` provides the one-call facade::

    from repro.api import RunOptions, Session, Spmv3D

    opts = RunOptions(engine="sharded", workers=4)
    u, cycles = Session(opts).run(Spmv3D(op, v))

All shipped runners (``run_spmv_des``, ``run_spmv2d_des``,
``run_axpy_des``, ``run_dot_des``, :class:`~repro.kernels.spmv3d.SpmvEngine`,
:class:`~repro.wse.allreduce.AllReduceEngine`,
:class:`~repro.kernels.bicgstab_des.DESBiCGStab`) consume
:class:`RunOptions` internally; their legacy keywords still work but
emit :class:`DeprecationWarning` via :func:`coerce_options`.

Removal schedule
----------------
The legacy keywords (``engine=``, ``analyze=``, ``obs=``, plus
positional spellings) are deprecated as of PR 10 and will be removed
two PRs later (PR 12).  Migrate by passing ``options=RunOptions(...)``
— see ``docs/parallel.md`` ("Migrating to repro.api").
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass
from typing import Any

__all__ = [
    "ENGINES",
    "RunOptions",
    "Session",
    "Spmv3D",
    "Spmv2D",
    "Axpy",
    "Dot",
    "AllReduce",
    "add_engine_arguments",
    "coerce_options",
    "options_from_args",
]

#: The four stepping engines, in fidelity order: the naive full-grid
#: reference sweep, the event-driven active-set engine, the
#: record-once/replay-many compiled engine, and the multi-process
#: sharded engine (conservative barrier PDES over the active engine).
ENGINES = ("reference", "active", "replay", "sharded")

_REMOVAL_NOTE = (
    "deprecated since PR 10 and will be removed in PR 12; pass "
    "options=repro.api.RunOptions(...) instead (see docs/parallel.md, "
    "'Migrating to repro.api')"
)


@dataclass(frozen=True)
class RunOptions:
    """How to execute a kernel program (immutable, validated).

    Parameters
    ----------
    engine:
        One of :data:`ENGINES`.  ``"sharded"`` partitions the fabric
        into contiguous rectangles and steps each in its own process
        (:mod:`repro.wse.shard`); results are bit-identical to
        ``"active"``.
    sanitize:
        Attach the runtime race sanitizer for the run.  Unsupported
        under ``engine="sharded"`` (the sanitizer's happens-before
        graph is whole-fabric; run the sanitized pass under
        ``engine="active"`` — sharded runs are bit-identical anyway).
    analyze:
        Statically verify the tile program at build time
        (:func:`repro.wse.analyze.analyze_program`) instead of only
        computing its contract.
    obs:
        Optional :class:`repro.obs.ObsSession` receiving fabric
        observers and kernel trace spans.
    profile:
        Attach the cycle profiler (requires ``obs``); unsupported under
        ``engine="sharded"`` for the same reason as ``sanitize``.
    workers:
        Shard-worker process count; only meaningful (and only legal
        above 1) with ``engine="sharded"``.  Clamped to the fabric's
        splittable extent at run time.
    """

    engine: str = "active"
    sanitize: bool = False
    analyze: bool = False
    obs: Any = None
    profile: bool = False
    workers: int = 1

    def __post_init__(self) -> None:
        if self.engine not in ENGINES:
            raise ValueError(
                f"engine must be one of {ENGINES}, got {self.engine!r}"
            )
        if not isinstance(self.workers, int) or self.workers < 1:
            raise ValueError(f"workers must be a positive int, got "
                             f"{self.workers!r}")
        if self.engine == "sharded":
            if self.sanitize:
                raise ValueError(
                    "engine='sharded' does not support sanitize=True; the "
                    "race sanitizer needs the whole-fabric happens-before "
                    "graph — run the sanitized pass under engine='active' "
                    "(sharded runs are bit-identical to it)"
                )
            if self.profile:
                raise ValueError(
                    "engine='sharded' does not support profile=True; "
                    "profile under engine='active' (sharded runs are "
                    "bit-identical to it)"
                )
        elif self.workers != 1:
            raise ValueError(
                f"workers={self.workers} requires engine='sharded' "
                f"(got engine={self.engine!r})"
            )
        if self.profile and self.obs is None:
            raise ValueError("profile=True requires an obs session")

    def replace(self, **changes) -> "RunOptions":
        """A copy with ``changes`` applied (re-validated)."""
        return dataclasses.replace(self, **changes)


def coerce_options(options: RunOptions | None = None, caller: str = "run",
                   **legacy) -> RunOptions:
    """Normalize a runner's arguments into one :class:`RunOptions`.

    Runners call this with their (possibly ``None``-defaulted) legacy
    keywords; any legacy value actually supplied emits a
    :class:`DeprecationWarning` naming the caller and the removal
    schedule.  Passing both ``options=`` and a legacy keyword is an
    error — the call would be ambiguous.
    """
    supplied = {k: v for k, v in legacy.items() if v is not None}
    unknown = set(supplied) - set(RunOptions.__dataclass_fields__)
    if unknown:
        raise TypeError(f"{caller}: unknown option(s) {sorted(unknown)}")
    if options is not None:
        if not isinstance(options, RunOptions):
            raise TypeError(
                f"{caller}: options must be a repro.api.RunOptions, "
                f"got {type(options).__name__}"
            )
        if supplied:
            raise TypeError(
                f"{caller}: pass either options=RunOptions(...) or the "
                f"legacy keyword(s) {sorted(supplied)}, not both"
            )
        return options
    if supplied:
        warnings.warn(
            f"{caller}: the {sorted(supplied)} keyword(s) are "
            f"{_REMOVAL_NOTE}",
            DeprecationWarning,
            stacklevel=3,
        )
        return RunOptions(**supplied)
    return RunOptions()


# ----------------------------------------------------------------------
# Shared CLI fragment — one spelling of --engine/--workers/--json for
# every ``python -m repro`` subcommand that runs fabric programs.
# ----------------------------------------------------------------------
def add_engine_arguments(parser, *, default: str = "active",
                         extra_choices: tuple = (),
                         engine: bool = True,
                         workers: bool = True,
                         json_flag: bool = False) -> None:
    """Install the standard execution flags on an argparse parser.

    ``--engine`` offers the four engines (plus any subcommand
    aggregates like ``both``/``all`` via ``extra_choices``),
    ``--workers N`` selects the shard process count, and ``--json``
    (opt-in per subcommand) requests machine-readable output.  Flag
    spellings are frozen here so every subcommand stays consistent;
    subcommands that cannot execute a particular engine reject it after
    parsing with an explanation rather than hiding the choice.
    """
    if engine:
        parser.add_argument(
            "--engine", choices=ENGINES + tuple(extra_choices),
            default=default,
            help=f"fabric stepping engine (default: {default})",
        )
    if workers:
        parser.add_argument(
            "--workers", type=int, default=1, metavar="N",
            help="shard worker processes for --engine sharded "
            "(default: 1; clamped to the fabric's splittable extent)",
        )
    if json_flag:
        parser.add_argument(
            "--json", action="store_true",
            help="emit machine-readable JSON instead of the text report",
        )


def options_from_args(args, **overrides) -> RunOptions:
    """Build a :class:`RunOptions` from a parsed argparse namespace.

    Reads ``engine`` and ``workers`` (when present) and applies
    ``overrides`` on top.  Aggregate engine spellings (``both``/``all``)
    must be expanded by the subcommand before calling this.
    """
    fields = {"engine": getattr(args, "engine", "active")}
    w = getattr(args, "workers", 1)
    fields["workers"] = w if fields["engine"] == "sharded" else 1
    fields.update(overrides)
    return RunOptions(**fields)


# ----------------------------------------------------------------------
# Program specs — the "what" half of Session.run(program, options)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Spmv3D:
    """One 3D (Fig. 3 mapping) SpMV: ``run`` returns ``(u, cycles)``."""

    op: Any
    v: Any
    fifo_capacity: int = 20
    two_sum_tasks: bool = False
    max_cycles: int = 200_000

    def run(self, options: RunOptions):
        from .kernels.spmv3d import run_spmv_des

        return run_spmv_des(
            self.op, self.v, fifo_capacity=self.fifo_capacity,
            max_cycles=self.max_cycles, two_sum_tasks=self.two_sum_tasks,
            options=options,
        )


@dataclass(frozen=True)
class Spmv2D:
    """One 2D block-mapped SpMV: ``run`` returns ``(u, cycles)``."""

    op: Any
    v: Any
    block_shape: tuple
    max_cycles: int = 500_000

    def run(self, options: RunOptions):
        from .kernels.spmv2d_des import run_spmv2d_des

        return run_spmv2d_des(
            self.op, self.v, self.block_shape,
            max_cycles=self.max_cycles, options=options,
        )


@dataclass(frozen=True)
class Axpy:
    """Core-local SIMD-4 ``y + a*x``: ``run`` returns ``(out, cycles)``."""

    a: float
    x: Any
    y: Any

    def run(self, options: RunOptions):
        from .kernels.blas_des import run_axpy_des

        return run_axpy_des(self.a, self.x, self.y, options=options)


@dataclass(frozen=True)
class Dot:
    """The mixed-precision local dot: ``run`` returns ``(value, cycles)``."""

    x: Any
    y: Any

    def run(self, options: RunOptions):
        from .kernels.blas_des import run_dot_des

        return run_dot_des(self.x, self.y, options=options)


@dataclass(frozen=True)
class AllReduce:
    """One Fig. 6 collective over ``values`` (shape ``(height, width)``):
    ``run`` returns ``(sum, cycles)``."""

    values: Any
    queue_capacity: int = 8

    def run(self, options: RunOptions):
        from .wse.allreduce import simulate_allreduce

        return simulate_allreduce(
            self.values, queue_capacity=self.queue_capacity, options=options,
        )


class Session:
    """The one-call facade: ``Session(options).run(program)``.

    A session pins a default :class:`RunOptions`; ``run`` executes any
    program spec under it (or a per-call override).  Program specs are
    anything with a ``run(options)`` method — the dataclasses above
    cover the shipped kernels.
    """

    def __init__(self, options: RunOptions | None = None):
        self.options = options if options is not None else RunOptions()
        if not isinstance(self.options, RunOptions):
            raise TypeError("Session(options=...) must be a RunOptions")

    def run(self, program, options: RunOptions | None = None):
        opts = self.options if options is None else options
        if not isinstance(opts, RunOptions):
            raise TypeError("options must be a repro.api.RunOptions")
        return program.run(opts)
