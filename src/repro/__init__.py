"""repro — reproduction of "Fast Stencil-Code Computation on a
Wafer-Scale Processor" (Rocki et al., SC 2020).

The library implements the paper's contribution — BiCGStab for 7-point
stencil systems mapped onto the Cerebras CS-1 wafer-scale engine — plus
every substrate the paper relies on, in pure Python/NumPy:

* :mod:`repro.precision` — fp16/fp32 mixed-precision arithmetic rules;
* :mod:`repro.problems` — stencil operators and manufactured systems;
* :mod:`repro.solver` — BiCGStab (reference and wafer-mapped), CG,
  iterative refinement;
* :mod:`repro.wse` — the wafer simulator: tiles, routers, FIFOs, tasks,
  the Fig. 5 channel tessellation, the Fig. 6 AllReduce;
* :mod:`repro.kernels` — the SpMV dataflow programs (3D and 2D);
* :mod:`repro.obs` — observability: span tracing on the wafer timeline,
  a metrics registry, Chrome-trace/Perfetto export, phase breakdowns;
* :mod:`repro.clustersim` — the message-passing cluster baseline;
* :mod:`repro.cfd` — a SIMPLE finite-volume solver (the MFIX stand-in);
* :mod:`repro.perfmodel` — calibrated models for every table/figure;
* :mod:`repro.analysis` — table and ASCII-figure reporting.

Quickstart::

    import repro
    sys_ = repro.problems.convection_diffusion_system((32, 32, 64))
    solver = repro.WaferBiCGStab()
    result = solver.solve(sys_, rtol=1e-3)
    print(result.summary())
    print(result.performance_summary())
"""

from . import analysis, api, cfd, clustersim, io, kernels, obs, perfmodel, precision, problems, solver, wse
from .precision import Precision
from .problems import (
    LinearSystem,
    Stencil7,
    Stencil9,
    convection_diffusion_system,
    poisson_system,
)
from .solver import SolveResult, WaferBiCGStab, bicgstab, cg, refined_solve
from .perfmodel import ClusterModel, SimpleCostModel, WaferPerfModel

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "api",
    "cfd",
    "clustersim",
    "io",
    "kernels",
    "obs",
    "perfmodel",
    "precision",
    "problems",
    "solver",
    "wse",
    "Precision",
    "LinearSystem",
    "Stencil7",
    "Stencil9",
    "convection_diffusion_system",
    "poisson_system",
    "SolveResult",
    "WaferBiCGStab",
    "bicgstab",
    "cg",
    "refined_solve",
    "ClusterModel",
    "SimpleCostModel",
    "WaferPerfModel",
    "__version__",
]
