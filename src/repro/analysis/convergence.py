"""Convergence analytics for solver residual histories.

Utility layer over :class:`~repro.solver.result.SolveResult` histories:
asymptotic convergence-rate estimation, iterations-to-tolerance
extrapolation (what the paper's fixed-171-iteration run corresponds to
at a given tolerance), plateau detection for the mixed-precision
studies (Fig. 9's defining feature), and a power-iteration condition
estimate for stencil operators.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "convergence_rate",
    "iterations_to_tolerance",
    "detect_plateau",
    "estimate_extreme_eigenvalues",
]


def convergence_rate(residuals, tail: int = 5) -> float:
    """Geometric-mean per-iteration reduction factor over the tail.

    A value of 0.5 means the residual halves each iteration; >= 1 means
    stagnation.  Requires at least two entries.
    """
    r = np.asarray(residuals, dtype=np.float64)
    if len(r) < 2:
        raise ValueError("need at least two residuals")
    r = np.maximum(r, 1e-300)
    tail = min(tail, len(r) - 1)
    ratios = r[-tail:] / r[-tail - 1:-1]
    return float(np.exp(np.mean(np.log(np.maximum(ratios, 1e-300)))))


def iterations_to_tolerance(
    residuals, rtol: float, max_extrapolation: int = 100_000
) -> int | None:
    """Iterations needed to reach ``rtol``, extrapolating at the tail rate.

    Returns the (possibly already-achieved) iteration count, or None
    when the history stagnates (rate >= 1) before reaching the target.
    """
    r = np.asarray(residuals, dtype=np.float64)
    hit = np.nonzero(r <= rtol)[0]
    if hit.size:
        return int(hit[0]) + 1
    rate = convergence_rate(r)
    if rate >= 1.0:
        return None
    # epsilon guards the exact-power case against float noise
    extra = int(np.ceil(np.log(rtol / r[-1]) / np.log(rate) - 1e-9))
    total = len(r) + max(extra, 0)
    return total if total <= max_extrapolation else None


def detect_plateau(
    residuals, window: int = 4, improvement: float = 0.7
) -> int | None:
    """First iteration where the residual stops improving.

    A plateau starts at index ``i`` when over the following ``window``
    iterations the residual never drops below ``improvement`` times its
    value at ``i`` (Fig. 9's mixed curve plateaus near iteration 7).
    Returns the 1-based iteration, or None if no plateau.
    """
    r = np.asarray(residuals, dtype=np.float64)
    for i in range(len(r) - window):
        if np.all(r[i + 1:i + 1 + window] > improvement * r[i]):
            return i + 1
    return None


def estimate_extreme_eigenvalues(
    operator, iterations: int = 80, seed: int = 0
) -> tuple[float, float]:
    """(|lambda|_max, sigma_min estimate) via power iteration on A and
    inverse-free power iteration on the normal residual.

    Rough — intended for conditioning *class* statements (e.g. the
    stretched-mesh generator making systems harder), not spectra.
    Returns ``(largest |eigenvalue| of A, smallest singular-value
    estimate)``.
    """
    rng = np.random.default_rng(seed)
    shape = operator.shape
    v = rng.standard_normal(shape)
    v /= np.linalg.norm(v.ravel())
    lam = 0.0
    for _ in range(iterations):
        w = operator.apply(v)
        lam = float(np.linalg.norm(w.ravel()))
        if lam == 0.0:
            return 0.0, 0.0
        v = w / lam
    # Smallest singular value via a few steps of inverse iteration on
    # A^T A approximated by Richardson: cheap lower-bound estimate from
    # the residual of the best least-squares fit along A v directions.
    u = rng.standard_normal(shape)
    u /= np.linalg.norm(u.ravel())
    # Use shifted power iteration on (lam*I - A^T A / lam) to pull the
    # small end: sigma_min^2 ~ lam * (lam' shift residual).
    A = operator.to_csr()
    x = u.ravel()
    for _ in range(iterations):
        y = A.T @ (A @ x)
        y = lam * lam * x - y
        n = np.linalg.norm(y)
        if n == 0:
            break
        x = y / n
    quad = float(x @ (A.T @ (A @ x)))
    sigma_min = float(np.sqrt(max(quad, 0.0)))
    return lam, sigma_min
