"""Benchmark history ledger and regression gate.

Every ``make bench-smoke`` produces a set of ``BENCH_*.json`` artifacts
(engine throughput, observability overhead, analyzer cost, replay
speedup, profiler overhead).  Those files are overwritten in place, so
by themselves they answer "how fast is it now?" but never "is it slower
than last week?".  This module adds both halves:

* :func:`summarize` distills one ``BENCH_*.json`` into a one-line
  record — benchmark name, workload mesh, host, timestamp, and the
  headline figure of merit (``cycles_per_second`` for engine-style
  benchmarks, wall ``seconds`` for the analyzer-cost one);
* :func:`append_history` appends those records to ``BENCH_history.jsonl``
  (one JSON object per line, append-only — the committed ledger);
* :func:`compare` holds the current ``BENCH_*.json`` files against the
  ledger: for each benchmark the *baseline* is the earliest matching
  (benchmark, mesh) entry, preferring entries from the same host.  A
  same-host throughput drop beyond the threshold (default 10%) is a
  **regression** (CLI exits 1); cross-host comparisons are advisory
  only — wall-clock throughput is not comparable across machines, so
  they warn, never fail.

CLI: ``python -m repro bench-history`` (append) and ``python -m repro
bench-compare`` (gate); both are wired into ``make bench-smoke`` / CI.
"""

from __future__ import annotations

import argparse
import json
import socket
import time
from pathlib import Path

__all__ = [
    "summarize",
    "append_history",
    "load_history",
    "compare",
    "history_main",
    "compare_main",
]

#: Relative cycles/sec drop versus the baseline that fails the gate.
DEFAULT_THRESHOLD = 0.10

#: benchmark name -> path (list of keys) to its cycles/sec headline.
_CPS_KEYS = {
    "bicgstab_des_engine": ("active", "cycles_per_second"),
    "obs_overhead": ("off", "cycles_per_second"),
    "profile_overhead": ("off", "cycles_per_second"),
    "bicgstab_replay_engine": ("replay", "cycles_per_second"),
    "sharded_des_engine": ("sharded_4w", "cycles_per_second"),
}


def summarize(source) -> dict | None:
    """One-line summary record for a ``BENCH_*.json`` file (or dict).

    Returns ``None`` for files this module does not understand (unknown
    ``benchmark`` key) rather than guessing at a figure of merit.
    """
    if isinstance(source, (str, Path)):
        data = json.loads(Path(source).read_text())
    else:
        data = source
    bench = data.get("benchmark")
    if not bench:
        return None
    record = {
        "benchmark": bench,
        "mesh": data.get("workload", {}).get("mesh"),
        "host": socket.gethostname(),
        "timestamp": round(time.time(), 3),
        "cycles_per_second": None,
        "seconds": None,
    }
    keys = _CPS_KEYS.get(bench)
    if keys is not None:
        node = data
        for k in keys:
            node = node.get(k, {}) if isinstance(node, dict) else {}
        if isinstance(node, (int, float)):
            record["cycles_per_second"] = float(node)
    elif bench == "analyze_cost":
        progs = data.get("programs", [])
        total = sum(p.get("all_passes_seconds", 0.0) for p in progs)
        record["seconds"] = round(total, 4)
        record["mesh"] = [p.get("program") for p in progs]
    elif bench == "numerics_cost":
        progs = data.get("programs", [])
        total = sum(p.get("numerics_seconds", 0.0) for p in progs)
        record["seconds"] = round(total, 4)
        record["mesh"] = [p.get("program") for p in progs]
    else:
        return None
    return record


def append_history(bench_paths, history_path) -> list[dict]:
    """Append one summary line per readable benchmark file; returns the
    appended records."""
    records = []
    for path in bench_paths:
        path = Path(path)
        if not path.exists():
            continue
        try:
            rec = summarize(path)
        except (json.JSONDecodeError, OSError):
            continue
        if rec is not None:
            records.append(rec)
    if records:
        history_path = Path(history_path)
        with history_path.open("a") as fh:
            for rec in records:
                fh.write(json.dumps(rec, sort_keys=True) + "\n")
    return records


def load_history(history_path) -> list[dict]:
    """Parse the JSONL ledger (missing file -> empty history)."""
    history_path = Path(history_path)
    if not history_path.exists():
        return []
    records = []
    for line in history_path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            continue  # a torn line must not wedge the gate
    return records


def _baseline_for(history, rec) -> dict | None:
    """Earliest ledger entry matching (benchmark, mesh), same host
    preferred — cross-host baselines are advisory only."""
    matches = [
        h for h in history
        if h.get("benchmark") == rec["benchmark"]
        and h.get("mesh") == rec["mesh"]
        and h.get("cycles_per_second")
    ]
    if not matches:
        return None
    same_host = [h for h in matches if h.get("host") == rec["host"]]
    pool = same_host or matches
    return min(pool, key=lambda h: h.get("timestamp", 0.0))


def compare(bench_paths, history_path,
            threshold: float = DEFAULT_THRESHOLD) -> tuple[list[str], int]:
    """Hold current benchmark files against the ledger.

    Returns ``(report_lines, n_regressions)``; a regression is a
    same-host ``cycles_per_second`` more than ``threshold`` below its
    baseline.  Benchmarks without a throughput headline or without a
    baseline are reported as informational lines.
    """
    history = load_history(history_path)
    lines = []
    regressions = 0
    for path in bench_paths:
        path = Path(path)
        if not path.exists():
            continue
        try:
            rec = summarize(path)
        except (json.JSONDecodeError, OSError):
            lines.append(f"{path.name}: unreadable; skipped")
            continue
        if rec is None:
            lines.append(f"{path.name}: no known figure of merit; skipped")
            continue
        cps = rec["cycles_per_second"]
        if cps is None:
            lines.append(
                f"{rec['benchmark']}: {rec['seconds']}s (no throughput "
                "headline; not gated)")
            continue
        base = _baseline_for(history, rec)
        if base is None:
            lines.append(
                f"{rec['benchmark']} (mesh {rec['mesh']}): "
                f"{cps:.1f} cycles/s — no baseline in ledger")
            continue
        base_cps = base["cycles_per_second"]
        change = cps / base_cps - 1.0
        cross_host = base.get("host") != rec["host"]
        tag = f"{rec['benchmark']} (mesh {rec['mesh']})"
        if cross_host:
            lines.append(
                f"{tag}: {cps:.1f} vs {base_cps:.1f} cycles/s baseline "
                f"({change:+.1%}) — baseline from host "
                f"{base.get('host')!r}, advisory only")
            continue
        if change < -threshold:
            regressions += 1
            lines.append(
                f"{tag}: REGRESSION {cps:.1f} vs {base_cps:.1f} cycles/s "
                f"baseline ({change:+.1%}, gate -{threshold:.0%})")
        else:
            lines.append(
                f"{tag}: {cps:.1f} vs {base_cps:.1f} cycles/s baseline "
                f"({change:+.1%}) OK")
    return lines, regressions


def _default_bench_paths(root: Path) -> list[Path]:
    return sorted(
        p for p in root.glob("BENCH_*.json") if p.name != "BENCH_history.jsonl"
    )


def history_main(argv: list[str] | None = None) -> int:
    """CLI entry: append current BENCH_*.json summaries to the ledger."""
    ap = argparse.ArgumentParser(
        prog="repro bench-history",
        description="Append one-line summaries of BENCH_*.json files to "
                    "the append-only BENCH_history.jsonl ledger.",
    )
    ap.add_argument("bench", nargs="*",
                    help="benchmark JSON files (default: ./BENCH_*.json)")
    ap.add_argument("--history", default="BENCH_history.jsonl",
                    help="ledger path (default: BENCH_history.jsonl)")
    args = ap.parse_args(argv)
    paths = [Path(p) for p in args.bench] or _default_bench_paths(Path("."))
    records = append_history(paths, args.history)
    for rec in records:
        fom = (f"{rec['cycles_per_second']:.1f} cycles/s"
               if rec["cycles_per_second"] is not None
               else f"{rec['seconds']}s")
        print(f"appended {rec['benchmark']}: {fom}")
    if not records:
        print("no readable benchmark files found; ledger unchanged")
    return 0


def compare_main(argv: list[str] | None = None) -> int:
    """CLI entry: gate current benchmarks against the ledger (exit 1 on
    a >threshold same-host throughput regression)."""
    ap = argparse.ArgumentParser(
        prog="repro bench-compare",
        description="Compare current BENCH_*.json files against the "
                    "BENCH_history.jsonl ledger; exit 1 on a same-host "
                    "throughput regression beyond the threshold.",
    )
    ap.add_argument("bench", nargs="*",
                    help="benchmark JSON files (default: ./BENCH_*.json)")
    ap.add_argument("--history", default="BENCH_history.jsonl",
                    help="ledger path (default: BENCH_history.jsonl)")
    ap.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                    help="tolerated fractional drop (default: 0.10)")
    args = ap.parse_args(argv)
    paths = [Path(p) for p in args.bench] or _default_bench_paths(Path("."))
    lines, regressions = compare(paths, args.history, args.threshold)
    for line in lines:
        print(line)
    if regressions:
        print(f"BENCH COMPARE FAILED ({regressions} regression(s))")
        return 1
    print("BENCH COMPARE OK")
    return 0
