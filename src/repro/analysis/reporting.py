"""Report formatting: ASCII tables and series for the reproductions.

Every benchmark prints the rows/series its paper table or figure
reports; these helpers keep that output consistent and readable in a
terminal (no plotting dependencies are available offline).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = ["format_table", "format_series", "ascii_plot", "paper_vs_measured"]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str | None = None,
    floatfmt: str = ".4g",
) -> str:
    """Render rows as a fixed-width ASCII table."""
    srows = []
    for row in rows:
        srow = []
        for cell in row:
            if isinstance(cell, float):
                srow.append(format(cell, floatfmt))
            else:
                srow.append(str(cell))
        srows.append(srow)
    widths = [len(h) for h in headers]
    for srow in srows:
        for i, cell in enumerate(srow):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for srow in srows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(srow, widths)))
    return "\n".join(lines)


def format_series(
    x: Sequence, y: Sequence, xlabel: str = "x", ylabel: str = "y",
    title: str | None = None, floatfmt: str = ".4g",
) -> str:
    """Two-column series listing (the data behind a figure)."""
    return format_table([xlabel, ylabel], list(zip(x, y)), title, floatfmt)


def ascii_plot(
    x: Sequence[float],
    ys: dict[str, Sequence[float]],
    width: int = 60,
    height: int = 16,
    logy: bool = False,
    title: str | None = None,
) -> str:
    """Crude ASCII line chart for one or more series sharing x.

    Good enough to show a figure's *shape* (scaling curves, residual
    histories) directly in benchmark output.
    """
    marks = "*o+x#@"
    xs = np.asarray(x, dtype=float)
    all_y = np.concatenate([np.asarray(v, dtype=float) for v in ys.values()])
    if logy:
        all_y = np.log10(np.maximum(all_y, 1e-300))
    lo, hi = float(all_y.min()), float(all_y.max())
    if hi <= lo:
        hi = lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    for si, (name, yv) in enumerate(ys.items()):
        yy = np.asarray(yv, dtype=float)
        if logy:
            yy = np.log10(np.maximum(yy, 1e-300))
        for xi, yval in zip(xs, yy):
            col = int((xi - xs.min()) / max(xs.max() - xs.min(), 1e-300) * (width - 1))
            row = int((yval - lo) / (hi - lo) * (height - 1))
            grid[height - 1 - row][col] = marks[si % len(marks)]
    lines = []
    if title:
        lines.append(title)
    ytop = f"1e{hi:.1f}" if logy else f"{hi:.3g}"
    ybot = f"1e{lo:.1f}" if logy else f"{lo:.3g}"
    lines.append(f"  {ytop}")
    for row in grid:
        lines.append("  |" + "".join(row))
    lines.append(f"  {ybot}" + " " * max(width - 12, 1) + f"x: {xs.min():g}..{xs.max():g}")
    legend = "   ".join(f"{marks[i % len(marks)]} {name}" for i, name in enumerate(ys))
    lines.append("  " + legend)
    return "\n".join(lines)


def paper_vs_measured(records: Iterable[dict]) -> str:
    """Standard EXPERIMENTS.md-style comparison table.

    Each record: ``{"quantity", "paper", "measured", "note"?}``.
    """
    rows = []
    for r in records:
        rows.append(
            (r["quantity"], r["paper"], r["measured"], r.get("note", ""))
        )
    return format_table(["quantity", "paper", "measured", "note"], rows)
