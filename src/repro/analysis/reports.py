"""Ready-made experiment reports (the CLI's and notebooks' entry point).

Each function regenerates one of the paper's tables/figures (or a
supporting study) as a printable string, using the same code paths as
the benchmark harness.  ``python -m repro <name>`` dispatches here.
"""

from __future__ import annotations

import numpy as np

from .reporting import ascii_plot, format_table, paper_vs_measured

__all__ = [
    "headline_report",
    "allreduce_report",
    "table1_report",
    "table2_report",
    "balance_report",
    "routing_report",
    "cluster_report",
    "fig9_report",
    "spmv2d_report",
    "cfd_report",
    "capacity_report",
    "sweep_report",
    "ablation_report",
    "roofline_report",
    "multiwafer_report",
    "energy_report",
    "des_scale_report",
    "observed_trace_report",
    "REPORTS",
]


def headline_report() -> str:
    """Section V's measured results (model-side)."""
    from ..perfmodel import HEADLINE_MESH, WaferPerfModel

    m = WaferPerfModel()
    t = m.iteration_time(HEADLINE_MESH)
    bd = m.iteration_breakdown(HEADLINE_MESH)
    out = [paper_vs_measured([
        {"quantity": "time / iteration (us)", "paper": 28.1,
         "measured": round(t * 1e6, 2)},
        {"quantity": "achieved PFLOPS", "paper": 0.86,
         "measured": round(m.pflops(HEADLINE_MESH), 3)},
        {"quantity": "fraction of peak", "paper": "~1/3",
         "measured": round(m.fraction_of_peak(HEADLINE_MESH), 3)},
        {"quantity": "GFLOPS per watt", "paper": 43.0,
         "measured": round(m.gflops_per_watt(HEADLINE_MESH), 1)},
        {"quantity": "tile storage (KB)", "paper": "~31",
         "measured": round(m.storage_bytes_per_tile(1536) / 1024, 1)},
    ])]
    out.append("")
    out.append(format_table(
        ["component", "cycles / iteration"],
        [
            ("2 x SpMV", round(bd.spmv_cycles, 0)),
            ("4 x dot (compute)", round(bd.dot_compute_cycles, 0)),
            ("6 x AXPY", round(bd.axpy_cycles, 0)),
            (f"overhead x{bd.overhead_factor:.2f}",
             round(bd.compute_cycles * (bd.overhead_factor - 1), 0)),
            ("4 x AllReduce", round(bd.allreduce_cycles, 0)),
            ("total", round(bd.total_cycles, 0)),
        ],
        title="per-core cycle breakdown, 600x595x1536",
    ))
    return "\n".join(out)


def allreduce_report() -> str:
    """Fig. 6 / the <1.5 us AllReduce."""
    from ..wse import (
        CS1,
        allreduce_latency_cycles,
        allreduce_latency_seconds,
        simulate_allreduce,
    )

    g = CS1.geometry
    rng = np.random.default_rng(0)
    rows = []
    for w, h in [(8, 8), (16, 16), (32, 16)]:
        vals = rng.standard_normal((h, w)).astype(np.float32)
        _, cycles = simulate_allreduce(vals)
        rows.append((f"{w}x{h}", w * h, cycles,
                     allreduce_latency_cycles(w, h, stage_overhead=0)))
    out = [format_table(
        ["fabric", "cores", "DES cycles", "model (no overhead)"],
        rows, title="simulated AllReduce vs latency model",
    )]
    cycles = allreduce_latency_cycles(g.fabric_width, g.fabric_height)
    out.append("")
    out.append(paper_vs_measured([
        {"quantity": "full-wafer latency (us)", "paper": "< 1.5",
         "measured": round(allreduce_latency_seconds() * 1e6, 3)},
        {"quantity": "cycles / diameter", "paper": "~1.1",
         "measured": round(cycles / g.diameter, 3)},
    ]))
    return "\n".join(out)


def table1_report() -> str:
    """Table I: ops per meshpoint per iteration."""
    from ..perfmodel import measured_counts, table1

    rows = []
    for r in table1():
        label = f"{r.name} (x{r.count})" if r.count else r.name
        rows.append((label, r.sp_add, r.sp_mul, r.mixed_hp_add,
                     r.mixed_hp_mul, r.mixed_sp_add))
    out = [format_table(
        ["Operation", "SP +", "SP x", "HP +", "HP x", "SP + (mixed)"],
        rows, title="Table I: operations per meshpoint per iteration",
    )]
    m = measured_counts(iterations=4)
    out.append(
        f"\ninstrumented solver: {m['matvec_mul']:.0f} matvec multiplies, "
        f"{m['matvec_add']:.0f} adds per point per iteration, "
        f"{m['dots_per_iteration']:.0f} dots per iteration"
    )
    return "\n".join(out)


def table2_report() -> str:
    """Table II: SIMPLE phase cycles."""
    from ..cfd import OpCounter, lid_driven_cavity
    from ..perfmodel import table2

    solver = lid_driven_cavity(n=12)
    solver.counter = OpCounter(enabled=True)
    solver.iterate(solver.initialize())
    measured = solver.counter.report()
    rows = []
    for p in table2():
        lo, hi = p.printed_total
        got = measured.get(p.name, {}).get("cycles", 0.0)
        rows.append((p.name, f"{lo}-{hi}", round(got, 1)))
    return format_table(
        ["SIMPLE step", "paper cycles/point", "measured (our assembly)"],
        rows,
        title="Table II: cycles per meshpoint (excluding the solver)",
    )


def balance_report() -> str:
    """Fig. 1 data."""
    from ..perfmodel import balance_table

    return format_table(
        ["system", "year", "flops/word mem", "flops/word net"],
        [(e.system, e.year, e.flops_per_word_memory,
          e.flops_per_word_interconnect) for e in balance_table()],
        title="Fig. 1: machine balance (8-byte words)",
    )


def routing_report() -> str:
    """Fig. 5 tessellation."""
    from ..wse import channel_map, verify_tessellation

    colors = channel_map(10, 6)
    verify_tessellation(colors)
    lines = ["Fig. 5: c(x,y) = (x + 2y) mod 5 (property verified)"]
    for y in range(5, -1, -1):
        lines.append("  " + " ".join(str(colors[y, x]) for x in range(10)))
    return "\n".join(lines)


def cluster_report() -> str:
    """Figs. 7-8 scaling curves and the 214x ratio."""
    from ..perfmodel import ClusterModel

    cm = ClusterModel()
    cores = [1024, 2048, 4096, 8192, 16384]
    rows = [
        (c,
         round(cm.iteration_time((370,) * 3, c) * 1e3, 2),
         round(cm.iteration_time((600,) * 3, c) * 1e3, 2),
         f"{cm.fraction_of_peak((600,) * 3, c) * 100:.2f}%")
        for c in cores
    ]
    out = [format_table(
        ["cores", "370^3 ms/iter", "600^3 ms/iter", "600^3 frac of peak"],
        rows, title="Figs. 7-8: modeled Joule 2.0 strong scaling",
    )]
    out.append("")
    out.append(ascii_plot(
        cores,
        {"370^3": [r[1] for r in rows], "600^3": [r[2] for r in rows]},
        logy=True, title="time per iteration (ms)",
    ))
    out.append(f"\nCS-1 ratio at 16K cores: {cm.cs1_speedup():.0f}x "
               "(paper: about 214x)")
    return "\n".join(out)


def fig9_report(shape=(50, 200, 50)) -> str:
    """Fig. 9 residual histories."""
    from ..problems import fig9_momentum_system
    from ..solver import bicgstab

    sys_ = fig9_momentum_system(shape=shape)
    histories = {}
    for prec in ("single", "mixed"):
        res = bicgstab(sys_.operator, sys_.b, precision=prec, rtol=0.0,
                       maxiter=15, record_true_residual=True)
        histories[prec] = np.array(res.true_residuals)
    iters = np.arange(1, 16)
    out = [format_table(
        ["iteration", "single", "mixed"],
        [(int(i), float(histories["single"][i - 1]),
          float(histories["mixed"][i - 1])) for i in iters],
        title=f"Fig. 9: relative residual, momentum system {shape}",
        floatfmt=".3e",
    ), "", ascii_plot(iters, histories, logy=True)]
    return "\n".join(out)


def spmv2d_report() -> str:
    """Section IV.2's 2D-mapping claims."""
    from ..kernels import Block2DModel, max_block_size, max_mesh_extent

    rows = []
    for b in (4, 8, 16, 38, 39):
        m = Block2DModel.for_block(b)
        rows.append((f"{b}x{b}", m.memory_bytes, "yes" if m.fits else "NO",
                     f"{m.overhead * 100:.1f}%"))
    out = [format_table(
        ["block", "tile bytes", "fits 48KB", "overhead"],
        rows, title="2D mapping (9-point stencil)",
    )]
    out.append(f"\nmax block {max_block_size()}x{max_block_size()} "
               f"=> {max_mesh_extent(600)}^2 mesh on a 600^2 fabric "
               "(paper: 38x38 / 22800x22800; <20% overhead at 8x8)")
    return "\n".join(out)


def cfd_report() -> str:
    """Section VI.A throughput projection."""
    from ..perfmodel import SimpleCostModel

    m = SimpleCostModel()
    lo, hi = m.timesteps_per_second_range()
    return paper_vs_measured([
        {"quantity": "timesteps/s @600^3, 15 iters", "paper": "80-125",
         "measured": f"{lo:.0f}-{hi:.0f}"},
        {"quantity": "speedup vs 16K-core Joule", "paper": "> 200",
         "measured": round(m.joule_speedup(), 0)},
    ])


def capacity_report() -> str:
    """Section VIII.B roadmap and applications."""
    from ..perfmodel import (
        APPLICATIONS,
        ROADMAP,
        assess_application,
        max_cube_edge,
        max_meshpoints,
    )

    rows = [(n.name, f"{n.sram_gb:.0f} GB",
             f"{max_meshpoints(n) / 1e6:.0f} M cells",
             f"{max_cube_edge(n)}^3") for n in ROADMAP]
    out = [format_table(
        ["wafer generation", "SRAM", "max CFD cells", "max cube"],
        rows, title="memory-capacity roadmap (paper section VIII.B)",
    ), ""]
    arows = []
    for app in APPLICATIONS:
        a = assess_application(app)
        arows.append((
            app.name[:44],
            f"{app.cells / 1e6:.1f} M",
            "yes" if a.fits else "NO",
            round(a.steps_per_second, 1),
            "-" if a.realtime_factor is None else f"{a.realtime_factor:.1f}x",
            "-" if a.speedup is None else f"{a.speedup:.0f}x",
        ))
    out.append(format_table(
        ["application", "cells", "fits CS-1", "steps/s", "real-time",
         "vs cited system"],
        arows, title="section VIII use cases on the CS-1",
    ))
    return "\n".join(out)


def sweep_report() -> str:
    """Section V mesh size/shape predictions."""
    from ..perfmodel import WaferPerfModel

    m = WaferPerfModel()
    meshes = [(600, 595, z) for z in (256, 512, 1024, 1536, 2048)]
    recs = m.sweep_mesh_shape(meshes)
    return format_table(
        ["mesh", "us/iter", "PFLOPS", "frac of peak"],
        [(f"{r['mesh'][0]}x{r['mesh'][1]}x{r['mesh'][2]}",
          round(r["time_us"], 2), round(r["pflops"], 3),
          round(r["fraction_of_peak"], 3)) for r in recs],
        title="mesh shape sweep (calibrated model)",
    )


def ablation_report() -> str:
    """Collective-schedule ablation: blocking vs batched reductions."""
    from ..perfmodel import WaferPerfModel

    m = WaferPerfModel()
    rows = []
    for z in (64, 256, 1024, 1536):
        mesh = (600, 595, z)
        t4 = m.iteration_time_with_schedule(mesh, (1, 1, 1, 1))
        t3 = m.iteration_time_with_schedule(mesh, (1, 2, 2))
        rows.append((z, round(t4 * 1e6, 2), round(t3 * 1e6, 2),
                     f"{(t4 / t3 - 1) * 100:.1f}%"))
    return format_table(
        ["Z", "4 blocking AllReduces (us)", "3 batched (us)", "gain"],
        rows,
        title="communication-reduction ablation (the variant the paper "
              "notes it did not use)",
    )


def roofline_report() -> str:
    """Roofline analysis: why ~1% on CPUs, ~1/3 on the wafer (§I)."""
    from ..perfmodel import roofline_table

    rows = [
        (r["machine"], round(r["ridge_flop_per_byte"], 3),
         round(r["solver_intensity"], 3), r["bound"],
         f"{r['attainable_fraction'] * 100:.1f}%")
        for r in roofline_table()
    ]
    return format_table(
        ["machine", "ridge (flop/B)", "BiCGStab intensity", "bound",
         "attainable frac of peak"],
        rows,
        title="roofline: the balance argument of the paper's introduction",
    )


def multiwafer_report() -> str:
    """Multi-wafer clustering (§VIII.B's closing direction)."""
    from ..perfmodel import MultiWaferModel

    rows = []
    for bw in (50e9, 150e9, 300e9, 600e9):
        m = MultiWaferModel(link_bandwidth=bw)
        pt = m.point(4, 595)
        rows.append((f"{bw / 1e9:.0f} GB/s", round(pt.iteration_seconds * 1e6, 2),
                     f"{pt.efficiency * 100:.0f}%",
                     f"{pt.total_meshpoints / 1e9:.2f} B"))
    m = MultiWaferModel()
    out = [format_table(
        ["link bandwidth", "us/iter (4 wafers)", "weak-scaling eff",
         "meshpoints"],
        rows,
        title="clustering wafers: what 'sufficient bandwidth' means",
    )]
    out.append(
        f"\nhalo hides behind compute above "
        f"{m.sufficient_bandwidth() / 1e9:.0f} GB/s per boundary "
        f"(headline slab 600 x 595 x 1536 per wafer)"
    )
    return "\n".join(out)


def energy_report() -> str:
    """Energy & space: the per-watt and 1/3-rack claims (abstract)."""
    from ..perfmodel import EnergyModel

    cmp = EnergyModel().compare()
    em = EnergyModel()
    return format_table(
        ["quantity", "CS-1", "Joule @16K cores"],
        [
            ("joules / BiCGStab iteration",
             round(cmp.wafer_joules_per_iteration, 3),
             round(cmp.cluster_joules_per_iteration, 1)),
            ("GFLOPS / W", round(cmp.wafer_gflops_per_watt, 1),
             round(cmp.cluster_gflops_per_watt, 4)),
            ("pJ / flop", round(em.wafer_picojoules_per_flop(), 1),
             round(1000 / cmp.cluster_gflops_per_watt, 0)),
            ("racks", "1/3", round(cmp.cluster_racks, 1)),
            ("energy ratio / iteration", 1.0, round(cmp.energy_ratio, 0)),
        ],
        title="energy and space (paper: per-watt and per-size 'beyond what "
              "has been reported')",
    )


def des_scale_report(shape=(16, 16, 2), engine="active", workers=1) -> str:
    """BiCGStab on the word-level simulator at 256 tiles (16 x 16).

    The largest fabric exercised anywhere else in the suite is 8 x 8
    (64 tiles); this demo runs the full discrete simulation — every
    SpMV and AllReduce as fabric programs, persistent engines, the
    event-driven active-set stepping — on a fabric 4x larger, and
    reports the engine's observability counters alongside the solve.
    ``engine`` selects the stepping engine (``python -m repro des-scale
    --engine replay`` records iteration 1 and replays the rest as
    compiled NumPy schedules; ``--engine sharded --workers N`` steps the
    fabrics through N shard processes, bit-identically).
    """
    import time

    from ..api import RunOptions
    from ..kernels.bicgstab_des import DESBiCGStab
    from ..problems import momentum_system

    sys_ = momentum_system(shape, reynolds=50.0, dt=0.02)
    solver = DESBiCGStab(
        sys_.operator, persistent=True,
        options=RunOptions(engine=engine, workers=workers),
    )
    t0 = time.perf_counter()
    res = solver.solve(sys_.b, rtol=5e-3, maxiter=30)
    wall = time.perf_counter() - t0
    solver.close()
    rep = solver.report
    cycles = skipped = words = 0
    peak_r = peak_c = router_cycles = core_cycles = 0
    for eng in (solver._spmv_eng, solver._ar_eng):
        if eng is None:
            continue
        st = eng.fabric.stats
        cycles += st.cycles
        skipped += st.skipped_cycles
        words += eng.fabric.total_words_moved
        router_cycles += st.active_router_cycles
        core_cycles += st.active_core_cycles
        peak_r = max(peak_r, st.peak_active_routers)
        peak_c = max(peak_c, st.peak_active_cores)
    stepped = cycles - skipped
    nx, ny, nz = shape
    out = format_table(
        ["quantity", "value"],
        [
            ("fabric", f"2 x {nx}x{ny} tiles ({2 * nx * ny} total; "
                       "largest elsewhere in suite: 8x8)"),
            ("mesh", f"{nx} x {ny} x {nz}"),
            ("converged", str(res.converged)),
            ("iterations", res.iterations),
            ("final residual", f"{res.residuals[-1]:.2e}"),
            ("timeline cycles / fabric", rep.total_cycles),
            ("fabric cycles simulated", cycles),
            ("stepped / skipped", f"{stepped} / {skipped}"),
            ("words moved", words),
            ("mean active routers", round(router_cycles / max(stepped, 1), 1)),
            ("mean awake cores", round(core_cycles / max(stepped, 1), 1)),
            ("peak active routers / cores", f"{peak_r} / {peak_c}"),
            ("wall seconds", round(wall, 2)),
            ("cycles / second", round(cycles / wall, 0)),
        ],
        title=f"event-driven DES at 16x16 ({engine} engine"
              + (f", {workers} workers)" if engine == "sharded" else ")"),
    )
    if engine == "replay":
        extra = []
        for label, eng in (("spmv", solver._spmv_eng),
                           ("allreduce", solver._ar_eng)):
            sess = getattr(eng, "replay", None) if eng is not None else None
            if sess is None:
                continue
            extra.append(
                f"  replay[{label}]: records={sess.records} "
                f"replays={sess.replays} fallbacks={sess.fallbacks} "
                f"invalidations={sess.invalidations}"
            )
            for d in sess.diagnostics:
                extra.append(f"    {d}")
        if extra:
            out = out + "\n" + "\n".join(extra)
    return out


def lint_report() -> str:
    """Static analysis of every shipped kernel program (zero = healthy)."""
    from ..wse.analyze.lint import lint_report_text

    return lint_report_text()


def observed_trace_report() -> str:
    """Observed DES solve: per-phase cycles, telemetry, fabric stats."""
    from ..obs.cli import trace_report

    return trace_report()


def verify_contracts_report() -> str:
    """Run every program, check observed words/cycles against contracts."""
    from ..wse.analyze.verify_contracts import verify_report_text

    return verify_report_text()


def profile_solve_report() -> str:
    """Profiled DES solve: top bottleneck, critical path, slack."""
    from ..obs.cli import profile_report

    return profile_report()


#: CLI dispatch table: name -> report function.
REPORTS = {
    "headline": headline_report,
    "allreduce": allreduce_report,
    "table1": table1_report,
    "table2": table2_report,
    "fig1": balance_report,
    "fig5": routing_report,
    "figs78": cluster_report,
    "fig9": fig9_report,
    "spmv2d": spmv2d_report,
    "cfd": cfd_report,
    "capacity": capacity_report,
    "sweep": sweep_report,
    "ablation": ablation_report,
    "roofline": roofline_report,
    "multiwafer": multiwafer_report,
    "energy": energy_report,
    "des-scale": des_scale_report,
    "lint": lint_report,
    "verify-contracts": verify_contracts_report,
    "trace": observed_trace_report,
    "profile": profile_solve_report,
}
