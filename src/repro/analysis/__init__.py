"""Reporting and analysis: tables, ASCII figures, convergence analytics."""

from .reporting import ascii_plot, format_series, format_table, paper_vs_measured
from .convergence import (
    convergence_rate,
    detect_plateau,
    estimate_extreme_eigenvalues,
    iterations_to_tolerance,
)

__all__ = [
    "ascii_plot",
    "format_series",
    "format_table",
    "paper_vs_measured",
    "convergence_rate",
    "detect_plateau",
    "estimate_extreme_eigenvalues",
    "iterations_to_tolerance",
]
