# Convenience targets for the repro library.

.PHONY: install test bench bench-verbose examples report all clean

install:
	pip install -e . --no-build-isolation || python setup.py develop

test:
	pytest tests/ -q

bench:
	pytest benchmarks/ --benchmark-only -q

bench-verbose:
	pytest benchmarks/ --benchmark-only -s

examples:
	@for ex in examples/*.py; do \
		echo "== $$ex"; python $$ex || exit 1; \
	done

report:
	python -m repro write-report

all: test bench

clean:
	rm -rf build dist src/*.egg-info .pytest_benchmark .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
