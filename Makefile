# Convenience targets for the repro library.

.PHONY: install test lint verify-contracts certify-numerics sanitize check trace profile bench bench-smoke bench-compare bench-verbose examples report all clean

install:
	pip install -e . --no-build-isolation || python setup.py develop

test:
	pytest tests/ -q

# Static checks: the wafer-program analyzer over every shipped kernel,
# byte-compilation of the whole source tree, and (when installed) pyflakes.
lint:
	PYTHONPATH=src python -m repro lint
	python -m compileall -q src
	@python -c "import pyflakes" 2>/dev/null \
		&& python -m pyflakes src \
		|| echo "pyflakes not installed; skipped"

# Dynamic verification: run every shipped program under the DES engine
# and hold the observed per-router word counts (exactly) and cycle
# counts (>= the static lower bound) to each program's StaticContract.
verify-contracts:
	PYTHONPATH=src python -m repro verify-contracts

# Numerics certification: the static mixed-precision error bounds of
# every shipped program held against an fp64 shadow execution on the
# engine — observed error <= certified bound <= declared tolerance,
# and the unscaled mfix-like variant rejected with a confirmed witness.
certify-numerics:
	PYTHONPATH=src python -m repro certify-numerics

# Race-sanitized runs: every shipped program twice (plain vs sanitizer
# attached), checked race-free and bit-identical at the byte level.
sanitize:
	PYTHONPATH=src python -m repro sanitize

# The pre-PR gate: static analysis, contract verification against the
# engine (plus a 2-worker sharded-equivalence leg — every shipped
# program bit-identical across shard processes), race-sanitized runs,
# then the tier-1 test suite.  Run before every PR.
check: lint verify-contracts certify-numerics sanitize
	PYTHONPATH=src python -m repro verify-contracts --engine sharded --workers 2
	PYTHONPATH=src python -m pytest -x -q

# Observed DES solve: per-phase cycle table + iteration telemetry on
# stdout, Chrome-trace JSON (open in chrome://tracing / ui.perfetto.dev)
# and per-tile utilization heatmaps on disk.  See docs/observability.md.
trace:
	PYTHONPATH=src python -m repro trace

# Profiled DES solve: causal critical-path profile — top bottleneck
# (phase, tile, wait reason), per-phase slack vs the static contracts,
# speedscope flamegraph (profile_flame.txt) and a Chrome trace with
# critical-path tracks (profile_trace.json).  See docs/observability.md.
profile:
	PYTHONPATH=src python -m repro profile

# Engine regression smoke: active-set vs pre-PR stepping on a small
# BiCGStab DES workload; writes BENCH_des.json (cycles/sec, words/sec,
# fabric size) and fails on any engine-equivalence mismatch.  Drop
# --quick for the full 48x48 headline measurement.  The second step
# measures the observability layer's overhead (tracer off vs on) into
# BENCH_obs.json and fails if the detached hot path regresses >5%.  The
# third step times every static-analysis pass (BENCH_analyze.json).
# The fourth compares the trace-compiled replay engine against the
# live engines (BENCH_replay.json) and fails on any three-way
# equivalence mismatch.  The fifth measures the cycle profiler's
# attached overhead (BENCH_profile.json, <25% gate + conservation).
# The sixth times the numerics pass (abstract interpretation + contract
# synthesis) on a 48x48 2D-mapped program and a 512-tile 3D program
# (BENCH_numerics.json).  The seventh compares the multi-process
# sharded engine against single-process active at 2 and 4 workers
# (BENCH_shard.json): equivalence is a hard gate everywhere, the
# >= 2.5x speedup gate only binds on hosts with >= 4 CPUs.  Finally
# every BENCH_*.json gets a one-line summary appended to the
# BENCH_history.jsonl ledger (see `make bench-compare`).
bench-smoke:
	PYTHONPATH=src python benchmarks/bench_des_engine.py --quick
	PYTHONPATH=src python benchmarks/bench_obs_overhead.py --quick
	PYTHONPATH=src python benchmarks/bench_analyze.py --quick
	PYTHONPATH=src python benchmarks/bench_replay.py --quick
	PYTHONPATH=src python benchmarks/bench_profile.py --quick
	PYTHONPATH=src python benchmarks/bench_numerics.py --quick
	PYTHONPATH=src python benchmarks/bench_shard.py --quick
	PYTHONPATH=src python -m repro bench-history

# Regression gate: hold the current BENCH_*.json files against the
# committed BENCH_history.jsonl ledger; fails on a >10% same-host
# cycles/sec drop (cross-host comparisons warn but never fail).
bench-compare:
	PYTHONPATH=src python -m repro bench-compare

bench:
	pytest benchmarks/ --benchmark-only -q

bench-verbose:
	pytest benchmarks/ --benchmark-only -s

examples:
	@for ex in examples/*.py; do \
		echo "== $$ex"; python $$ex || exit 1; \
	done

report:
	python -m repro write-report

all: test bench

clean:
	rm -rf build dist src/*.egg-info .pytest_benchmark .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
