"""Legacy setup shim.

The environment's setuptools predates PEP 660 editable wheels; this file
lets ``pip install -e .`` fall back to ``setup.py develop``.  All real
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
