"""Tests for the certified mixed-precision numerics analysis.

Covers every layer of the certification loop:

* the :class:`Val` abstract domain and its helper bounds,
* :class:`NumericsContract` serialization (including infinities),
* the ``numerics`` pass on the Fig. 9 safe/unsafe pair,
* witness synthesis + engine confirmation for rejected programs,
* the fp64 shadow executor (:class:`ShadowNumerics`),
* ``certify-numerics`` end to end (library + CLI),
* Hypothesis properties: on random small declared single-core programs
  the realized error never exceeds the certified static bound and the
  certified interval contains every realized output.
"""

import json
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.wse.analyze import analyze_program
from repro.wse.analyze.certify import (
    build_fig9_program,
    certified_programs,
    certify_program,
)
from repro.wse.analyze.diagnostics import Severity
from repro.wse.analyze.numerics import (
    NumericsContract,
    Val,
    accumulation_error_bound,
    compose_error_bounds,
    confirm_numerics_witness,
    finite_max,
    smallest_subnormal,
    synthesize_numerics_witness,
    unit_roundoff,
)
from repro.wse.sanitizer import ShadowNumerics

INF = math.inf


class TestValDomain:
    def test_make_enforces_mag_floor(self):
        v = Val.make(np.float16, -2.0, 3.0, err=0.5)
        assert v.mag == 3.5  # max(|lo|,|hi|) + err
        w = Val.make(np.float16, -2.0, 3.0, err=0.5, mag=10.0)
        assert w.mag == 10.0  # an explicit larger mag survives

    def test_from_array_contains_content(self):
        arr = np.array([-1.5, 0.25, 2.0], dtype=np.float16)
        v = Val.from_array(arr)
        assert v.lo == -1.5 and v.hi == 2.0 and v.err == 0.0

    def test_from_array_nonfinite_is_top(self):
        v = Val.from_array(np.array([1.0, np.inf], dtype=np.float32))
        assert v.lo == -INF and v.hi == INF

    def test_join_hulls_and_maxes(self):
        a = Val.make(np.float16, -1.0, 1.0, err=0.1)
        b = Val.make(np.float16, 0.0, 4.0, err=0.2)
        j = a.join(b)
        assert (j.lo, j.hi) == (-1.0, 4.0)
        assert j.err == 0.2

    def test_sign_definite(self):
        assert Val.make(np.float16, 1.0, 2.0).sign_definite()
        assert Val.make(np.float16, -2.0, -1.0).sign_definite()
        assert not Val.make(np.float16, -1.0, 2.0).sign_definite()

    def test_units_table(self):
        assert unit_roundoff(np.float16) == 2.0**-11
        assert unit_roundoff(np.float32) == 2.0**-24
        assert unit_roundoff(np.float64) == 2.0**-53
        assert finite_max(np.float16) == 65504.0
        assert smallest_subnormal(np.float16) == 2.0**-24

    def test_accumulation_error_bound_linear(self):
        one = accumulation_error_bound(np.float32, 1, 8.0)
        assert accumulation_error_bound(np.float32, 10, 8.0) == 10 * one

    def test_compose_error_bounds_sums(self):
        assert compose_error_bounds([0.25, 0.5, 0.125]) == 0.875

    @given(
        st.floats(-100, 100), st.floats(-100, 100),
        st.floats(0, 10), st.floats(0, 10),
    )
    @settings(max_examples=100, deadline=None)
    def test_make_invariant_property(self, a, b, err, mag):
        lo, hi = min(a, b), max(a, b)
        v = Val.make(np.float16, lo, hi, err=err, mag=mag)
        assert v.mag >= max(abs(v.lo), abs(v.hi)) + v.err


class TestNumericsContract:
    def _contract(self):
        return NumericsContract(entries=(
            (0, 0, "array", "out", "float16", -2.0, 2.0, 0.125, 2.125, 0.25),
            (1, 0, "scalar", "__scalar__", "float32", -INF, INF, INF, INF,
             None),
        ))

    def test_bound_for(self):
        c = self._contract()
        assert c.bound_for(0, 0, "out") == 0.125
        assert c.bound_for(9, 9, "out") is None

    def test_worst(self):
        assert self._contract().worst()[3] == "__scalar__"
        assert NumericsContract().worst() is None

    def test_roundtrip_with_infinities(self):
        c = self._contract()
        d = c.as_dict()
        json.loads(json.dumps(d))  # JSON-safe despite the infinities
        back = NumericsContract.from_dict(json.loads(json.dumps(d)))
        assert back.entries == c.entries


class TestFig9Pair:
    """The paper's Fig. 9 split: unscaled momentum coefficients overflow
    fp16; the Jacobi-scaled system certifies far inside tolerance."""

    def test_unscaled_rejected_statically(self):
        fabric, _out, _instrs = build_fig9_program(scaled=False)
        report = analyze_program(fabric)
        errors = [d for d in report.by_pass("numerics")
                  if d.severity is Severity.ERROR]
        assert errors, "unscaled mfix-like system must be rejected"
        assert any("overflow" in d.kind for d in errors)

    def test_scaled_certifies_clean(self):
        fabric, _out, _instrs = build_fig9_program(scaled=True)
        report = analyze_program(fabric)
        assert not [d for d in report.by_pass("numerics")
                    if d.severity is Severity.ERROR]
        contract = report.numerics
        bound = contract.bound_for(0, 0, "out")
        assert bound is not None and bound <= 0.25  # inside tolerance

    def test_witness_confirms_on_engine(self):
        fabric, _out, _instrs = build_fig9_program(scaled=False)
        report = analyze_program(fabric)
        diag = [d for d in report.by_pass("numerics")
                if d.severity is Severity.ERROR][0]
        witness = synthesize_numerics_witness(diag)
        assert witness  # a minimal feeder program was cut from the diag
        # confirm_* raises if the engine refutes the static claim; on
        # confirmation it reports what the engine realized.
        obs = confirm_numerics_witness(diag, engine="active")
        assert obs["primary_finite"] is False  # fp16 really overflowed
        assert obs["engine"] == "active"

    def test_contract_attached_to_static_contract(self):
        fabric, _out, _instrs = build_fig9_program(scaled=True)
        analyze_program(fabric)
        assert fabric.static_contract.numerics is not None


class TestShadowNumerics:
    def _run_fig9_shadowed(self, scaled=True):
        fabric, out, instrs = build_fig9_program(scaled=scaled)
        shadow = ShadowNumerics(fabric)
        fabric.attach_sanitizer(shadow)
        try:
            fabric.run(max_cycles=10_000,
                       until=lambda f: all(i.finished for i in instrs))
        finally:
            fabric.detach_sanitizer()
        return fabric, out, shadow

    def test_observed_error_within_static_bound(self):
        fabric, _out, shadow = self._run_fig9_shadowed(scaled=True)
        report = analyze_program(fabric)
        bound = report.numerics.bound_for(0, 0, "out")
        recs = [r for r in shadow.report() if r["name"] == "out"]
        assert recs and recs[0]["runs"] == 1
        assert recs[0]["error"] <= bound

    def test_range_precondition_checked(self):
        fabric, _out, instrs = build_fig9_program(scaled=True)
        # Violate the declared range (-2, 2) before the shadow attaches.
        mem = fabric.core(0, 0).memory
        mem.get("x")[:] = np.float16(100.0)
        shadow = ShadowNumerics(fabric)
        fabric.attach_sanitizer(shadow)
        try:
            fabric.run(max_cycles=10_000,
                       until=lambda f: all(i.finished for i in instrs))
        finally:
            fabric.detach_sanitizer()
        assert not shadow.range_ok
        assert shadow.range_violations

    def test_detach_restores_instructions(self):
        fabric, _out, instrs = build_fig9_program(scaled=True)
        shadow = ShadowNumerics(fabric)
        fabric.attach_sanitizer(shadow)
        fabric.detach_sanitizer()
        assert all(i._stepfn is None for i in instrs)


class TestCertify:
    def test_certified_programs_cover_fig9_pair(self):
        names = dict(certified_programs())
        assert names["mfix-fig9-scaled"] is False
        assert names["mfix-fig9-unscaled"] is True
        assert len(names) == 9

    def test_scaled_program_certifies(self):
        check = certify_program("mfix-fig9-scaled", False)
        assert check.ok and not check.failures
        assert check.worst_observed <= check.worst_bound

    def test_unscaled_program_rejected_with_witness(self):
        check = certify_program("mfix-fig9-unscaled", True)
        assert check.ok
        assert check.errors > 0
        assert check.witness_confirmed is True

    @pytest.mark.parametrize("engine", ["active", "replay"])
    def test_blas_certifies_both_engines(self, engine):
        check = certify_program("axpy-32", False, engine=engine)
        assert check.ok, check.failures

    def test_as_dict_is_json_serializable(self):
        check = certify_program("mfix-fig9-scaled", False)
        d = json.loads(json.dumps(check.as_dict()))
        assert d["program"] == "mfix-fig9-scaled" and d["ok"]


class TestCertifyCli:
    def test_cli_all_programs(self, capsys):
        from repro.cli import main

        assert main(["certify-numerics"]) == 0
        out = capsys.readouterr().out
        assert "CERTIFY-NUMERICS OK" in out
        assert "mfix-fig9-unscaled" in out

    def test_cli_json_lines(self, capsys):
        from repro.cli import main

        assert main(["certify-numerics", "--json"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        records = [json.loads(line) for line in lines]
        assert len(records) == len(certified_programs())
        assert all(r["ok"] for r in records)

    def test_verify_contracts_numerics_flag(self, capsys):
        from repro.wse.analyze.verify_contracts import verify_main

        assert verify_main(["--numerics"]) == 0
        assert "NUMERICS OK" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# Property tests: random declared single-core programs
# ---------------------------------------------------------------------------
_M = 8

_OPS = ("copy", "mul", "add", "mac")

_chain_ops = st.lists(
    st.tuples(st.sampled_from(_OPS), st.sampled_from("ab"),
              st.sampled_from("ab")),
    min_size=1, max_size=4,
)

_content = hnp.arrays(
    np.float16, _M,
    elements=st.floats(min_value=-2.0, max_value=2.0,
                       allow_nan=False, allow_infinity=False, width=16),
)


def _build_chain(ops, content_a, content_b):
    """A 1x1 fabric running a random declared elementwise chain into
    ``out`` (the arithmetic shape of the wafer SpMV, one core)."""
    from repro.wse.analyze.spec import InstrDecl, MemRef
    from repro.wse.config import CS1
    from repro.wse.core import Core
    from repro.wse.dsr import Instruction, MemCursor
    from repro.wse.fabric import Fabric

    fabric = Fabric(1, 1)
    core = Core(0, 0, CS1)
    fabric.attach_core(0, 0, core)
    mem = core.memory
    a = mem.alloc("a", _M, np.float16)
    a[:] = content_a
    b = mem.alloc("b", _M, np.float16)
    b[:] = content_b
    out = mem.alloc("out", _M, np.float16)

    decl = core.program_decl
    decl.declare_range("a", -2.0, 2.0)
    decl.declare_range("b", -2.0, 2.0)

    instrs = []
    for i, (op, s0, s1) in enumerate(ops):
        names = (s0,) if op == "copy" else (s0, s1)
        instr = Instruction(
            op=op,
            dst=MemCursor(out, 0, _M, name="out"),
            srcs=[MemCursor(mem.get(n), 0, _M, name=n) for n in names],
            length=_M,
            name=f"i{i}",
        )
        core.launch(instr, thread=None)
        decl.launched(InstrDecl(
            op, MemRef("out", 0, _M),
            tuple(MemRef(n, 0, _M) for n in names),
            length=_M, thread=None, name=f"i{i}",
        ))
        instrs.append(instr)
    fabric.prebind()
    return fabric, out, instrs


class TestRandomProgramProperties:
    @given(_chain_ops, _content, _content)
    @settings(max_examples=25, deadline=None)
    def test_realized_error_within_certified_bound(self, ops, ca, cb):
        fabric, out, instrs = _build_chain(ops, ca, cb)
        report = analyze_program(fabric, passes=("numerics",))
        assert not report.errors
        contract = report.numerics
        bound = contract.bound_for(0, 0, "out")
        assert bound is not None and math.isfinite(bound)

        shadow = ShadowNumerics(fabric)
        fabric.attach_sanitizer(shadow)
        try:
            fabric.run(max_cycles=50_000,
                       until=lambda f: all(i.finished for i in instrs))
        finally:
            fabric.detach_sanitizer()
        assert all(i.finished for i in instrs)
        assert shadow.range_ok

        recs = [r for r in shadow.report() if r["name"] == "out"]
        assert recs
        assert recs[0]["error"] <= bound + 1e-12

    @given(_chain_ops, _content, _content)
    @settings(max_examples=25, deadline=None)
    def test_certified_interval_contains_outputs(self, ops, ca, cb):
        fabric, out, instrs = _build_chain(ops, ca, cb)
        report = analyze_program(fabric, passes=("numerics",))
        entry = next(e for e in report.numerics.entries if e[3] == "out")
        _x, _y, _kind, _name, _dt, lo, hi, err, mag, _tol = entry

        fabric.run(max_cycles=50_000,
                   until=lambda f: all(i.finished for i in instrs))
        realized = np.asarray(out, dtype=np.float64)
        assert np.all(realized >= lo - err - 1e-12)
        assert np.all(realized <= hi + err + 1e-12)
        assert np.all(np.abs(realized) <= mag + 1e-12)
