"""Tests for the CG baseline and the iterative-refinement extension."""

import numpy as np
import pytest

from repro.problems import Stencil7, convection_diffusion_system, poisson_system
from repro.solver import bicgstab, cg, refined_solve

RNG = np.random.default_rng(37)


class TestCG:
    def test_spd_convergence(self):
        sys_ = poisson_system((6, 6, 6))
        res = cg(sys_.operator, sys_.b, rtol=1e-10, maxiter=500)
        assert res.converged
        assert sys_.relative_residual(res.x) < 1e-8

    def test_matches_bicgstab_solution(self):
        sys_ = poisson_system((5, 5, 5))
        r1 = cg(sys_.operator, sys_.b, rtol=1e-12, maxiter=500)
        r2 = bicgstab(sys_.operator, sys_.b, rtol=1e-12, maxiter=500)
        np.testing.assert_allclose(r1.x, r2.x, rtol=1e-6, atol=1e-9)

    def test_indefinite_breakdown_detected(self):
        op = Stencil7({"diag": -np.ones((3, 3, 3))})  # negative definite
        res = cg(op, np.ones(op.shape), maxiter=10)
        assert res.breakdown == "indefinite"
        assert not res.converged

    def test_zero_rhs(self):
        op = Stencil7.identity((3, 3, 3))
        res = cg(op, np.zeros(op.shape))
        assert res.converged and res.iterations == 0

    def test_mixed_precision_plateau(self):
        """CG's true residual in mixed precision stalls near fp16
        precision (the recurrence may drift below it)."""
        sys_ = poisson_system((6, 6, 6), source="random").preconditioned()
        res = cg(sys_.operator, sys_.b, precision="mixed", rtol=1e-12,
                 maxiter=80)
        true = sys_.relative_residual(res.x)
        assert 1e-6 < true < 0.2

    def test_maxiter(self):
        sys_ = poisson_system((6, 6, 6))
        res = cg(sys_.operator, sys_.b, rtol=1e-15, maxiter=2)
        assert res.iterations == 2


class TestRefinement:
    def test_recovers_fp64_accuracy_from_mixed_inner(self):
        """Paper section VI.B: iterative refinement around a low-precision
        solver recovers full precision — the plateau becomes a solve."""
        sys_ = convection_diffusion_system((6, 6, 6)).preconditioned()
        direct = bicgstab(sys_.operator, sys_.b, precision="mixed",
                          rtol=1e-10, maxiter=80)
        refined = refined_solve(sys_.operator, sys_.b, rtol=1e-10,
                                max_refinements=30)
        assert sys_.relative_residual(direct.x) > 1e-5  # mixed plateau
        assert refined.converged
        assert sys_.relative_residual(refined.x) < 1e-9

    def test_inner_iterations_recorded(self):
        sys_ = poisson_system((5, 5, 5)).preconditioned()
        res = refined_solve(sys_.operator, sys_.b, rtol=1e-8)
        assert res.info["inner_iterations"]
        assert all(i >= 0 for i in res.info["inner_iterations"])

    def test_zero_rhs(self):
        op = Stencil7.identity((3, 3, 3))
        res = refined_solve(op, np.zeros(op.shape))
        assert res.converged

    def test_outer_residuals_decrease(self):
        sys_ = poisson_system((5, 5, 5)).preconditioned()
        res = refined_solve(sys_.operator, sys_.b, rtol=1e-10,
                            max_refinements=20)
        assert res.residuals[-1] < res.residuals[0] * 1e-4

    def test_respects_max_refinements(self):
        sys_ = poisson_system((5, 5, 5)).preconditioned()
        res = refined_solve(sys_.operator, sys_.b, rtol=1e-30,
                            max_refinements=3)
        assert res.iterations <= 3


class TestSolveResult:
    def test_summary_strings(self):
        sys_ = poisson_system((4, 4, 4))
        res = bicgstab(sys_.operator, sys_.b, rtol=1e-8, maxiter=100)
        s = res.summary()
        assert "converged" in s
        assert "double" in s

    def test_final_residual_empty_history(self):
        from repro.solver import SolveResult

        r = SolveResult(x=np.zeros(1), converged=False, iterations=0)
        assert r.final_residual == float("inf")
        assert "max-iterations" in r.summary()

    def test_breakdown_summary(self):
        from repro.solver import SolveResult

        r = SolveResult(x=np.zeros(1), converged=False, iterations=1,
                        residuals=[1.0], breakdown="rho")
        assert "breakdown(rho)" in r.summary()
