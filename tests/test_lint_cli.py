"""Smoke tests for the ``python -m repro lint`` CLI path."""

import json

from repro.cli import main
from repro.wse.analyze.lint import (
    lint_json_lines,
    lint_report_text,
    lint_reports,
)

#: The stable machine-readable schema: every --json line has exactly
#: these keys (documented in docs/static_analysis.md).
JSON_KEYS = {"schema_version", "severity", "pass", "kind", "message",
             "where", "channel", "hint", "data", "program"}


class TestLintCli:
    def test_lint_exit_code_zero(self, capsys):
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "LINT OK" in out
        assert "clean (0 diagnostics)" in out

    def test_every_shipped_program_listed(self, capsys):
        main(["lint"])
        out = capsys.readouterr().out
        for name in ("spmv3d-3x3x6", "spmv3d-two-sum-tasks", "spmv3d-1x1x8",
                     "spmv2d-6x6-b3x3", "axpy-32", "dot-32", "allreduce-6x4"):
            assert name in out

    def test_lint_reports_all_clean(self):
        reports = lint_reports()
        assert len(reports) == 7
        for name, report in reports:
            assert report.ok, f"{name}:\n{report.format()}"

    def test_report_registry_entry(self):
        from repro.analysis.reports import REPORTS

        assert "lint" in REPORTS
        assert "LINT OK" in REPORTS["lint"]()

    def test_listed_in_help(self, capsys):
        main(["list"])
        assert "lint" in capsys.readouterr().out

    def test_text_and_cli_agree(self):
        assert lint_report_text().endswith("LINT OK")


class TestLintJson:
    def test_clean_programs_emit_nothing(self, capsys):
        """--json prints one object per *diagnostic*; a clean tree
        prints nothing and exits 0."""
        assert main(["lint", "--json"]) == 0
        assert capsys.readouterr().out == ""

    def test_json_lines_schema_and_exit(self, monkeypatch, capsys):
        """A seeded defect yields valid JSON lines with the stable
        schema and a non-zero exit."""
        import numpy as np

        import repro.wse.analyze.lint as lint_mod
        from repro.wse import CS1, Core, Fabric, Port

        f = Fabric(3, 1)
        for x in range(3):
            f.attach_core(x, 0, Core(x, 0, CS1))
        f.router(0, 0).set_route(0, Port.CORE, (Port.EAST,))  # dead-end
        f.router(1, 0).set_route(7, Port.EAST, (Port.EAST,))  # credit ring
        f.router(2, 0).set_route(7, Port.WEST, (Port.WEST,))
        monkeypatch.setattr(lint_mod, "shipped_programs",
                            lambda: [("broken", f)])
        assert lint_mod.lint_main(["--json"]) == 1
        lines = capsys.readouterr().out.strip().splitlines()
        objs = [json.loads(line) for line in lines]
        assert objs
        from repro.wse.analyze.diagnostics import SCHEMA_VERSION

        for obj in objs:
            assert set(obj) == JSON_KEYS
            assert obj["schema_version"] == SCHEMA_VERSION == 1
            assert obj["program"] == "broken"
            assert obj["severity"] in ("error", "warning", "info")
        kinds = {o["kind"] for o in objs}
        assert {"dead-end", "credit-cycle"} <= kinds
        # The cdg finding's data field carries the JSON-able cycle.
        (cdg,) = [o for o in objs if o["kind"] == "credit-cycle"]
        assert isinstance(cdg["data"], list) and len(cdg["data"]) == 2

    def test_helper_matches_cli(self):
        lines, any_error = lint_json_lines()
        assert lines == [] and not any_error
