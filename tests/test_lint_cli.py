"""Smoke tests for the ``python -m repro lint`` CLI path."""

from repro.cli import main
from repro.wse.analyze.lint import lint_report_text, lint_reports


class TestLintCli:
    def test_lint_exit_code_zero(self, capsys):
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "LINT OK" in out
        assert "clean (0 diagnostics)" in out

    def test_every_shipped_program_listed(self, capsys):
        main(["lint"])
        out = capsys.readouterr().out
        for name in ("spmv3d-3x3x6", "spmv3d-two-sum-tasks", "spmv3d-1x1x8",
                     "spmv2d-6x6-b3x3", "axpy-32", "dot-32", "allreduce-6x4"):
            assert name in out

    def test_lint_reports_all_clean(self):
        reports = lint_reports()
        assert len(reports) == 7
        for name, report in reports:
            assert report.ok, f"{name}:\n{report.format()}"

    def test_report_registry_entry(self):
        from repro.analysis.reports import REPORTS

        assert "lint" in REPORTS
        assert "LINT OK" in REPORTS["lint"]()

    def test_listed_in_help(self, capsys):
        main(["list"])
        assert "lint" in capsys.readouterr().out

    def test_text_and_cli_agree(self):
        assert lint_report_text().endswith("LINT OK")
