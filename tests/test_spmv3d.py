"""Tests for the Listing 1 SpMV dataflow program on the tile simulator.

The central claims checked here:

* the task/thread/FIFO program computes exactly the 7-point matvec
  (against the CSR ground truth at fp16 tolerance, and against the
  functional fp16 matvec to within accumulation-order noise);
* the completion-barrier tree fires exactly once per tile;
* FIFO back-pressure bounds memory without deadlock;
* the Z=1536 headline column fits the 48 KB tile memory.
"""

import numpy as np
import pytest

from repro.problems import Stencil7
from repro.kernels import build_spmv_fabric, run_spmv_des
from repro.wse import CS1

RNG = np.random.default_rng(43)


def _preconditioned(shape, seed=0):
    op = Stencil7.from_random(shape, rng=np.random.default_rng(seed))
    pre, _, _ = op.jacobi_precondition()
    return pre


def _fp16_tolerance(op, v):
    """Error allowance: a few fp16 ulps of the result magnitude per leg."""
    ref = op.apply(np.asarray(v, np.float16).astype(np.float64))
    scale = np.max(np.abs(ref)) + 1.0
    return 8 * 2.0**-11 * scale


class TestCorrectness:
    @pytest.mark.parametrize("shape", [(2, 2, 4), (4, 4, 8), (3, 5, 6), (1, 4, 8)])
    def test_matches_csr_ground_truth(self, shape):
        op = _preconditioned(shape)
        v = 0.1 * RNG.standard_normal(shape)
        u, _ = run_spmv_des(op, v)
        v16 = np.asarray(v, np.float16).astype(np.float64)
        ref = (op.to_csr() @ v16.ravel()).reshape(shape)
        assert np.max(np.abs(u - ref)) < _fp16_tolerance(op, v)

    def test_matches_functional_fp16(self):
        shape = (4, 4, 8)
        op = _preconditioned(shape, seed=5)
        v = 0.1 * RNG.standard_normal(shape)
        u, _ = run_spmv_des(op, v)
        ref = op.apply(np.asarray(v, np.float16).astype(np.float64),
                       precision="mixed").astype(np.float64)
        # Accumulation order differs (nondeterministic FIFO interleave on
        # hardware; fixed-but-different order here): a few fp16 ulps.
        assert np.max(np.abs(u - ref)) < _fp16_tolerance(op, v)

    def test_single_tile_mesh(self):
        """A 1x1 fabric exercises the all-neighbours-missing path."""
        shape = (1, 1, 8)
        op = _preconditioned(shape, seed=7)
        v = 0.1 * RNG.standard_normal(shape)
        u, _ = run_spmv_des(op, v)
        ref = (op.to_csr() @ np.asarray(v, np.float16).astype(np.float64).ravel()).reshape(shape)
        assert np.max(np.abs(u - ref)) < _fp16_tolerance(op, v)

    def test_identity_operator(self):
        shape = (3, 3, 4)
        op = Stencil7.identity(shape)
        v = RNG.standard_normal(shape)
        u, _ = run_spmv_des(op, v)
        np.testing.assert_allclose(
            u, np.asarray(v, np.float16).astype(np.float64), atol=1e-7
        )

    def test_z_of_one(self):
        shape = (3, 3, 1)
        op = _preconditioned(shape, seed=9)
        v = 0.1 * RNG.standard_normal(shape)
        u, _ = run_spmv_des(op, v)
        ref = (op.to_csr() @ np.asarray(v, np.float16).astype(np.float64).ravel()).reshape(shape)
        assert np.max(np.abs(u - ref)) < _fp16_tolerance(op, v)

    def test_unit_diagonal_required(self):
        op = Stencil7.from_random((2, 2, 4), rng=RNG)  # diag != 1
        with pytest.raises(ValueError, match="unit main diagonal"):
            run_spmv_des(op, np.zeros(op.shape))


class TestProtocol:
    def test_completion_tree_fires_once_per_tile(self):
        shape = (3, 3, 6)
        op = _preconditioned(shape, seed=11)
        fabric, programs = build_spmv_fabric(op, 0.1 * RNG.standard_normal(shape))
        fabric.run(max_cycles=10_000, until=lambda f: all(
            programs[j][i].done for j in range(3) for i in range(3)
        ) and f.quiescent())
        for j in range(3):
            for i in range(3):
                core = programs[j][i].core
                assert core.scheduler._tasks["xycdone"].runs == 1
                assert core.scheduler._tasks["spmv_exit"].runs == 1

    def test_sumtask_runs_and_fifos_drain(self):
        shape = (2, 2, 8)
        op = _preconditioned(shape, seed=13)
        fabric, programs = build_spmv_fabric(op, 0.1 * RNG.standard_normal(shape))
        fabric.run(max_cycles=10_000, until=lambda f: all(
            programs[j][i].done for j in range(2) for i in range(2)
        ) and f.quiescent())
        core = programs[0][0].core
        assert core.scheduler._tasks["sumtask"].runs >= 1

    def test_tile_memory_budget_at_headline_z(self):
        """One tile's SpMV program at Z=1536 fits 48 KB (the paper's
        mapping: ~8 Z-vectors + FIFO storage)."""
        shape = (1, 1, 1536)
        op = Stencil7.identity(shape)
        fabric, programs = build_spmv_fabric(op, np.zeros(shape))
        mem = programs[0][0].core.memory
        assert mem.bytes_used <= 48 * 1024
        # and it is a substantial fraction: ~8 vectors of Z fp16 words
        assert mem.bytes_used > 8 * 1536 * 2

    def test_small_fifo_capacity_still_correct(self):
        """Back-pressure path: capacity-2 FIFOs force stalls but must not
        deadlock or corrupt the result."""
        shape = (3, 3, 8)
        op = _preconditioned(shape, seed=17)
        v = 0.1 * RNG.standard_normal(shape)
        u, cycles = run_spmv_des(op, v, fifo_capacity=2)
        ref = (op.to_csr() @ np.asarray(v, np.float16).astype(np.float64).ravel()).reshape(shape)
        assert np.max(np.abs(u - ref)) < _fp16_tolerance(op, v)

    def test_cycle_count_scales_with_z(self):
        """The stream-limited kernel should be ~linear in Z."""
        op16 = _preconditioned((2, 2, 16), seed=19)
        op64 = _preconditioned((2, 2, 64), seed=19)
        _, c16 = run_spmv_des(op16, 0.1 * RNG.standard_normal((2, 2, 16)))
        _, c64 = run_spmv_des(op64, 0.1 * RNG.standard_normal((2, 2, 64)))
        assert c64 > c16
        assert c64 < 8 * c16  # linear-ish, not quadratic

    def test_cycles_at_least_z(self):
        """One word per channel per cycle: streaming Z words needs >= Z
        cycles (the fabric-limited lower bound)."""
        shape = (3, 3, 32)
        op = _preconditioned(shape, seed=23)
        _, cycles = run_spmv_des(op, 0.1 * RNG.standard_normal(shape))
        assert cycles >= 32


class TestTwoSumTasks:
    """Listing 1's commentary: "The production code used two distinct
    summation tasks to improve performance"."""

    def test_two_sum_tasks_same_result(self):
        shape = (3, 3, 8)
        op = _preconditioned(shape, seed=29)
        v = 0.1 * RNG.standard_normal(shape)
        u1, _ = run_spmv_des(op, v, two_sum_tasks=False)
        u2, _ = run_spmv_des(op, v, two_sum_tasks=True)
        ref = (op.to_csr() @ np.asarray(v, np.float16).astype(np.float64).ravel()).reshape(shape)
        assert np.max(np.abs(u1 - ref)) < _fp16_tolerance(op, v)
        assert np.max(np.abs(u2 - ref)) < _fp16_tolerance(op, v)

    def test_both_tasks_run(self):
        shape = (3, 3, 8)
        op = _preconditioned(shape, seed=31)
        fabric, programs = build_spmv_fabric(
            op, 0.1 * RNG.standard_normal(shape), two_sum_tasks=True
        )
        fabric.run(max_cycles=10_000, until=lambda f: all(
            programs[j][i].done for j in range(3) for i in range(3)
        ) and f.quiescent())
        core = programs[1][1].core  # interior tile: all legs active
        assert core.scheduler._tasks["sumtask"].runs >= 1
        assert core.scheduler._tasks["sumtask2"].runs >= 1
