"""Tests for the 2D 9-point problem generators (the §IV.2 workload)."""

import numpy as np
import pytest

from repro.kernels import block_spmv
from repro.kernels.spmv2d_des import run_spmv2d_des
from repro.problems import convection_diffusion9, poisson9, poisson9_system
from repro.solver import bicgstab, cg

RNG = np.random.default_rng(107)


class TestPoisson9:
    def test_spd(self):
        A = poisson9((6, 6)).to_csr().toarray()
        np.testing.assert_allclose(A, A.T, atol=1e-13)
        assert np.all(np.linalg.eigvalsh(A) > 0)

    def test_interior_row_sum_zero(self):
        op = poisson9((7, 7))
        rowsum = np.asarray(op.to_csr().sum(axis=1)).reshape(op.shape)
        assert abs(rowsum[3, 3]) < 1e-13

    def test_fourth_order_on_quadratic(self):
        """The Mehrstellen stencil is exact for quadratics away from
        boundaries: lap(x^2 + y^2) = 4."""
        n = 10
        h = 1.0 / n
        op = poisson9((n, n), spacing=h)
        xs = (np.arange(n) * h)[:, None]
        ys = (np.arange(n) * h)[None, :]
        v = xs**2 + ys**2
        u = op.apply(v)
        np.testing.assert_allclose(u[3:-3, 3:-3], -4.0, rtol=1e-10)

    def test_cg_converges(self):
        sys_ = poisson9_system((10, 10), source="random")
        res = cg(sys_.operator, sys_.b, rtol=1e-10, maxiter=600)
        assert res.converged

    def test_unknown_source(self):
        with pytest.raises(ValueError):
            poisson9_system((6, 6), source="bad")

    def test_block_spmv_consistent(self):
        """The §IV.2 output-halo kernel handles the corner legs."""
        op = poisson9((8, 8))
        v = RNG.standard_normal((8, 8))
        np.testing.assert_allclose(block_spmv(op, v, (4, 4)), op.apply(v),
                                   rtol=1e-12)


class TestConvectionDiffusion9:
    def test_m_matrix(self):
        op = convection_diffusion9((8, 8), velocity=(2.0, -1.0),
                                   time_coefficient=0.5)
        off = sum(np.abs(op.coeffs[n]) for n in op.coeffs if n != "diag")
        assert np.all(op.coeffs["diag"] >= off - 1e-12)

    def test_nonsymmetric(self):
        A = convection_diffusion9((6, 6), velocity=(3.0, 0.0)).to_csr()
        assert abs(A - A.T).max() > 1e-8

    def test_symmetric_without_velocity(self):
        A = convection_diffusion9((6, 6), velocity=(0.0, 0.0)).to_csr()
        assert abs(A - A.T).max() < 1e-12

    def test_solves_preconditioned_mixed(self):
        op = convection_diffusion9((10, 10), time_coefficient=2.0)
        b = RNG.standard_normal((10, 10))
        pre, bp, _ = op.jacobi_precondition(b)
        res = bicgstab(pre, bp, precision="mixed", rtol=5e-3, maxiter=100)
        assert res.converged

    def test_runs_on_2d_des_kernel(self):
        """The full loop: a 2D physics operator through the §IV.2 tile
        program."""
        op = convection_diffusion9((8, 8), time_coefficient=1.0)
        pre, _, _ = op.jacobi_precondition()
        v = 0.1 * RNG.standard_normal((8, 8))
        u, _ = run_spmv2d_des(pre, v, (4, 4))
        ref = pre.apply(np.asarray(v, np.float16).astype(np.float64))
        scale = np.max(np.abs(ref)) + 1.0
        assert np.max(np.abs(u - ref)) < 16 * 2.0**-11 * scale
