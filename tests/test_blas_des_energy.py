"""Tests for the DES BLAS kernels and the energy model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.kernels import run_axpy_des, run_dot_des
from repro.perfmodel import EnergyModel, HEADLINE_MESH
from repro.precision import axpy, dot_fp16_fp32
from repro.wse.dsr import Instruction, MemCursor, ScalarAccumulator

RNG = np.random.default_rng(79)

f16_arrays = hnp.arrays(
    np.float16, st.integers(1, 64),
    elements=st.floats(min_value=-8, max_value=8, allow_nan=False, width=16),
)


class TestAxpyDes:
    def test_bit_identical_to_precision_kernel(self):
        x = RNG.standard_normal(64).astype(np.float16)
        y = RNG.standard_normal(64).astype(np.float16)
        r, _ = run_axpy_des(0.7, x, y)
        np.testing.assert_array_equal(r, axpy(0.7, x, y, "mixed"))

    def test_simd4_cycle_count(self):
        """n elements at 4/cycle: ceil(n/4) + launch overhead."""
        x = np.ones(64, dtype=np.float16)
        _, cycles = run_axpy_des(1.0, x, x)
        assert 16 <= cycles <= 18

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            run_axpy_des(1.0, np.ones(3, np.float16), np.ones(4, np.float16))

    @given(f16_arrays, st.floats(min_value=-4, max_value=4, allow_nan=False))
    @settings(max_examples=25, deadline=None)
    def test_matches_reference_property(self, x, a):
        r, _ = run_axpy_des(a, x, x)
        np.testing.assert_array_equal(r, axpy(a, x, x, "mixed"))


class TestDotDes:
    def test_matches_hardware_dot(self):
        x = RNG.standard_normal(128).astype(np.float16)
        y = RNG.standard_normal(128).astype(np.float16)
        d, _ = run_dot_des(x, y)
        assert d == float(dot_fp16_fp32(x, y))

    def test_two_per_cycle_rate(self):
        """The mixed dot sustains 2 FMAC/cycle: ~n/2 cycles."""
        x = np.ones(64, dtype=np.float16)
        _, cycles = run_dot_des(x, x)
        assert 32 <= cycles <= 34

    def test_dot_slower_than_axpy_per_element(self):
        x = np.ones(128, dtype=np.float16)
        _, c_axpy = run_axpy_des(1.0, x, x)
        _, c_dot = run_dot_des(x, x)
        assert c_dot > c_axpy

    def test_fp32_accumulation(self):
        """4096 ones: fp16 accumulation would stall at 2048."""
        x = np.ones(4096, dtype=np.float16)
        d, _ = run_dot_des(x, x)
        assert d == 4096.0


class TestScalarAccumulator:
    def test_accumulates(self):
        acc = ScalarAccumulator(np.float32)
        src = np.array([1.0, 2.0, 3.0], dtype=np.float16)
        instr = Instruction(
            op="mac", dst=acc,
            srcs=[MemCursor(src, 0, 3), MemCursor(src, 0, 3)], length=3,
        )
        instr.step(8)
        assert acc.value == pytest.approx(14.0)
        assert acc.writes == 3

    def test_reset(self):
        acc = ScalarAccumulator()
        acc.write(5.0)
        acc.reset()
        assert acc.value == 0.0

    def test_axpy_op_requires_scalar(self):
        with pytest.raises(ValueError, match="scalar"):
            Instruction(op="axpy", dst=None, srcs=[None, None], length=1)

    def test_rate_cap(self):
        src = np.ones(8, dtype=np.float16)
        out = np.zeros(8, dtype=np.float16)
        instr = Instruction(
            op="copy", dst=MemCursor(out, 0, 8),
            srcs=[MemCursor(src, 0, 8)], length=8, rate=2,
        )
        assert instr.step(4) == 2  # capped below the SIMD width


class TestEnergyModel:
    @pytest.fixture(scope="class")
    def cmp(self):
        return EnergyModel().compare()

    def test_wafer_energy_per_iteration(self, cmp):
        """28.1 us at 20 kW ~ 0.56 J."""
        assert cmp.wafer_joules_per_iteration == pytest.approx(
            28.1e-6 * 20_000, rel=0.01
        )

    def test_gflops_per_watt_gap(self, cmp):
        """The abstract's per-watt claim: orders of magnitude."""
        assert cmp.wafer_gflops_per_watt == pytest.approx(43.0, rel=0.02)
        assert cmp.cluster_gflops_per_watt < 0.1
        assert cmp.wafer_gflops_per_watt / cmp.cluster_gflops_per_watt > 1000

    def test_energy_ratio_exceeds_time_ratio(self, cmp):
        """The cluster also burns more power, so the energy gap beats
        the ~218x time gap."""
        assert cmp.energy_ratio > 218

    def test_rack_comparison(self, cmp):
        """Paper: '1/3 rack' vs a multi-rack 16K-core partition."""
        assert cmp.wafer_racks == pytest.approx(1 / 3)
        assert cmp.cluster_racks > 8

    def test_picojoules_per_flop(self):
        pj = EnergyModel().wafer_picojoules_per_flop(HEADLINE_MESH)
        assert 10 < pj < 40  # ~23 pJ/flop at 0.86 PFLOPS / 20 kW
