"""Tests for the 9-point 2D stencil operator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.problems import Stencil9

RNG = np.random.default_rng(17)

shapes2 = st.tuples(st.integers(1, 6), st.integers(1, 6))


class TestConstruction:
    def test_defaults(self):
        op = Stencil9({"e": np.zeros((3, 3))})
        assert op.has_unit_diagonal
        assert op.n == 9

    def test_non_2d_raises(self):
        with pytest.raises(ValueError, match="2D"):
            Stencil9({"diag": np.ones((2, 2, 2))})

    def test_unknown_leg_raises(self):
        with pytest.raises(ValueError, match="unknown"):
            Stencil9({"diag": np.ones((2, 2)), "zz": np.zeros((2, 2))})

    def test_validate_diagonal_leg_boundary(self):
        c = np.zeros((3, 3))
        c[-1, -1] = 1.0  # ne corner couples off-mesh
        op = Stencil9({"diag": np.ones((3, 3)), "ne": c})
        with pytest.raises(ValueError, match="boundary"):
            op.validate()


class TestApplyVsCSR:
    def test_random(self):
        op = Stencil9.from_random((5, 6), rng=RNG)
        v = RNG.standard_normal(op.shape)
        np.testing.assert_allclose(
            op.apply(v), (op.to_csr() @ v.ravel()).reshape(op.shape), rtol=1e-13
        )

    def test_corner_coupling_included(self):
        """The diagonal (corner) legs distinguish 9-point from 5-point."""
        c = np.zeros((3, 3))
        c[0, 0] = 2.0
        op = Stencil9({"diag": np.ones((3, 3)), "ne": c})
        v = np.zeros((3, 3))
        v[1, 1] = 1.0
        u = op.apply(v)
        assert u[0, 0] == 2.0  # picked up from the (1,1) neighbour

    @given(shapes2, st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_apply_equals_csr_property(self, shape, seed):
        rng = np.random.default_rng(seed)
        op = Stencil9.from_random(shape, rng=rng)
        v = rng.standard_normal(shape)
        np.testing.assert_allclose(
            op.apply(v), (op.to_csr() @ v.ravel()).reshape(shape),
            rtol=1e-12, atol=1e-12,
        )

    def test_matmul(self):
        op = Stencil9.from_random((4, 4), rng=RNG)
        v = RNG.standard_normal((4, 4))
        np.testing.assert_array_equal(op @ v, op.apply(v))

    def test_flat_input(self):
        op = Stencil9.from_random((3, 4), rng=RNG)
        v = RNG.standard_normal(12)
        assert op.apply(v).shape == (12,)


class TestJacobi:
    def test_unit_diagonal(self):
        op = Stencil9.from_random((4, 4), rng=RNG)
        pre, _, _ = op.jacobi_precondition()
        assert pre.has_unit_diagonal

    def test_solution_preserved(self):
        op = Stencil9.from_random((4, 5), rng=RNG)
        x = RNG.standard_normal(op.shape)
        b = op.apply(x)
        pre, bp, _ = op.jacobi_precondition(b)
        np.testing.assert_allclose(pre.apply(x), bp, rtol=1e-12)

    def test_zero_diag_raises(self):
        with pytest.raises(ZeroDivisionError):
            Stencil9({"diag": np.zeros((2, 2))}).jacobi_precondition()

    def test_fp16_apply(self):
        op = Stencil9.from_random((4, 4), rng=RNG)
        pre, _, _ = op.jacobi_precondition()
        v = (0.1 * RNG.standard_normal((4, 4))).astype(np.float16)
        u = pre.apply(v, precision="mixed")
        assert u.dtype == np.float16
