"""Tests for the report generators and the CLI."""

import pytest

from repro.analysis.reports import REPORTS
from repro.cli import main


class TestReports:
    @pytest.mark.parametrize("name", sorted(REPORTS))
    def test_every_report_renders(self, name):
        out = REPORTS[name]()
        assert isinstance(out, str)
        assert len(out.splitlines()) >= 3

    def test_headline_contains_numbers(self):
        out = REPORTS["headline"]()
        assert "28.1" in out
        assert "0.86" in out or "0.859" in out

    def test_allreduce_mentions_claim(self):
        out = REPORTS["allreduce"]()
        assert "< 1.5" in out

    def test_cluster_mentions_214(self):
        out = REPORTS["figs78"]()
        assert "214" in out

    def test_capacity_lists_roadmap(self):
        out = REPORTS["capacity"]()
        assert "7 nm" in out and "5 nm" in out
        assert "helicopter" in out

    def test_table1_totals(self):
        assert "44" in REPORTS["table1"]() or "Total" in REPORTS["table1"]()


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "headline" in out and "fig9" in out

    def test_default_is_list(self, capsys):
        assert main([]) == 0
        assert "available reports" in capsys.readouterr().out

    def test_known_report(self, capsys):
        assert main(["fig5"]) == 0
        assert "mod 5" in capsys.readouterr().out

    def test_unknown_report(self, capsys):
        assert main(["nonsense"]) == 2
        err = capsys.readouterr().err
        assert "unknown report" in err

    def test_quick_reports_run(self, capsys):
        for name in ("table2", "spmv2d", "cfd", "sweep", "ablation"):
            assert main([name]) == 0
        assert capsys.readouterr().out
