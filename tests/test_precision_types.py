"""Tests for repro.precision.types: the precision taxonomy."""

import numpy as np
import pytest

from repro.precision import (
    Precision,
    accumulate_dtype,
    machine_epsilon,
    spec_for,
    storage_dtype,
)


class TestPrecisionParse:
    def test_parse_strings(self):
        assert Precision.parse("mixed") is Precision.MIXED
        assert Precision.parse("HALF") is Precision.HALF
        assert Precision.parse("Single") is Precision.SINGLE
        assert Precision.parse("double") is Precision.DOUBLE

    def test_parse_enum_passthrough(self):
        assert Precision.parse(Precision.MIXED) is Precision.MIXED

    def test_parse_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown precision"):
            Precision.parse("quad")


class TestSpecs:
    def test_mixed_spec_matches_paper(self):
        """Mixed mode: fp16 storage/elementwise, fp32 accumulate/scalar."""
        spec = spec_for(Precision.MIXED)
        assert spec.storage == np.float16
        assert spec.elementwise == np.float16
        assert spec.accumulate == np.float32
        assert spec.scalar == np.float32
        assert spec.bytes_per_word == 2

    def test_half_spec_is_all_fp16(self):
        spec = spec_for("half")
        assert spec.accumulate == np.float16
        assert spec.scalar == np.float16

    def test_single_and_double(self):
        assert spec_for("single").storage == np.float32
        assert spec_for("double").storage == np.float64
        assert spec_for("double").bytes_per_word == 8

    def test_storage_and_accumulate_shortcuts(self):
        assert storage_dtype("mixed") == np.float16
        assert accumulate_dtype("mixed") == np.float32

    def test_epsilon_fp16(self):
        """Paper section VI.B: 'machine precision is about 1e-3' in mixed."""
        eps = machine_epsilon("mixed")
        assert eps == pytest.approx(2.0**-11)
        assert 1e-4 < eps < 1e-3

    def test_accumulate_epsilon(self):
        spec = spec_for("mixed")
        assert spec.accumulate_epsilon == pytest.approx(2.0**-24)

    def test_epsilon_ordering(self):
        assert (
            machine_epsilon("double")
            < machine_epsilon("single")
            < machine_epsilon("mixed")
        )
