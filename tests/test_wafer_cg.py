"""Tests for CG on the wafer (the HPCG-class counterpart)."""

import numpy as np
import pytest

from repro.perfmodel import HEADLINE_MESH, WaferPerfModel
from repro.problems import laplacian27, poisson_system
from repro.solver import WaferCG, cg
from repro.solver.wafer_bicgstab import fabric_tree_dot


class TestWaferCG:
    def test_solves_poisson(self):
        sys_ = poisson_system((12, 12, 16), source="random")
        res = WaferCG().solve(sys_, rtol=5e-3, maxiter=400)
        assert res.converged
        assert sys_.relative_residual(res.x) < 0.05

    def test_matches_reference_cg(self):
        sys_ = poisson_system((8, 8, 8), source="random")
        wres = WaferCG().solve(sys_, rtol=1e-2, maxiter=100)
        pre = sys_.preconditioned()
        ref = cg(pre.operator, pre.b, precision="mixed", rtol=1e-2,
                 maxiter=100, dot_fn=fabric_tree_dot)
        assert wres.iterations == ref.iterations
        np.testing.assert_array_equal(wres.x, ref.x)

    def test_timing_half_of_bicgstab(self):
        """CG does half the kernel work: ~0.5x the BiCGStab iteration
        (dots halve too, so collectives halve as well)."""
        m = WaferPerfModel()
        ratio = m.cg_iteration_time(HEADLINE_MESH) / m.iteration_time(
            HEADLINE_MESH
        )
        assert ratio == pytest.approx(0.5, abs=0.05)

    def test_mesh_checked(self):
        sys_ = poisson_system((4, 4, 4))
        solver = WaferCG()
        with pytest.raises(ValueError):
            solver.model.check_mesh((4, 4, 5000))

    def test_bare_operator_requires_rhs(self):
        sys_ = poisson_system((4, 4, 4))
        with pytest.raises(ValueError, match="b is required"):
            WaferCG().solve(sys_.operator)

    def test_result_metadata(self):
        sys_ = poisson_system((8, 8, 8), source="random")
        res = WaferCG().solve(sys_, rtol=1e-2, maxiter=100)
        assert res.info["algorithm"] == "cg"
        assert res.modeled_iteration_seconds > 0
        assert res.allreduce_seconds > 0

    def test_hpcg_operator_on_wafer(self):
        """The 27-point HPCG-style operator solves on the wafer (at its
        reduced Z capacity)."""
        op = laplacian27((8, 8, 8))
        b = np.random.default_rng(0).standard_normal(op.shape)
        pre, bp, _ = op.jacobi_precondition(b)
        res = cg(pre, bp, precision="mixed", rtol=1e-2, maxiter=200,
                 dot_fn=None)
        assert res.final_residual < 0.05
