"""Tests for system persistence (.npz round trips)."""

import numpy as np
import pytest

from repro.io import load_system, save_system
from repro.problems import (
    LinearSystem,
    Stencil9,
    convection_diffusion_system,
    poisson_system,
)
from repro.solver import bicgstab


class TestRoundTrip:
    def test_stencil7_round_trip(self, tmp_path):
        sys_ = convection_diffusion_system((4, 5, 6))
        p = save_system(sys_, tmp_path / "sys")
        assert p.suffix == ".npz"
        loaded = load_system(p)
        assert loaded.name == sys_.name
        np.testing.assert_array_equal(loaded.b, sys_.b)
        for name in sys_.operator.coeffs:
            np.testing.assert_array_equal(
                loaded.operator.coeffs[name], sys_.operator.coeffs[name]
            )

    def test_stencil9_round_trip(self, tmp_path):
        op = Stencil9.from_random((5, 4), rng=np.random.default_rng(1))
        sys_ = LinearSystem(operator=op, b=np.ones((5, 4)), name="s9")
        loaded = load_system(save_system(sys_, tmp_path / "s9.npz"))
        assert loaded.operator.shape == (5, 4)
        np.testing.assert_array_equal(
            loaded.operator.coeffs["ne"], op.coeffs["ne"]
        )

    def test_x_true_preserved(self, tmp_path):
        sys_ = poisson_system((4, 4, 4)).manufactured()
        loaded = load_system(save_system(sys_, tmp_path / "m"))
        np.testing.assert_array_equal(loaded.x_true, sys_.x_true)

    def test_x_true_absent(self, tmp_path):
        sys_ = poisson_system((4, 4, 4))
        loaded = load_system(save_system(sys_, tmp_path / "p"))
        assert loaded.x_true is None

    def test_metadata_preserved(self, tmp_path):
        sys_ = convection_diffusion_system((4, 4, 4))
        loaded = load_system(save_system(sys_, tmp_path / "md"))
        assert loaded.meta["diffusivity"] == sys_.meta["diffusivity"]
        assert loaded.meta["spd"] == sys_.meta["spd"]

    def test_solve_after_reload_identical(self, tmp_path):
        """The loaded system must solve to the same iterates — the whole
        point of persisting instead of re-seeding."""
        sys_ = convection_diffusion_system((5, 5, 5))
        loaded = load_system(save_system(sys_, tmp_path / "solve"))
        a = bicgstab(sys_.operator, sys_.b, rtol=1e-10, maxiter=200)
        b = bicgstab(loaded.operator, loaded.b, rtol=1e-10, maxiter=200)
        assert a.iterations == b.iterations
        np.testing.assert_array_equal(a.x, b.x)

    def test_unsupported_operator(self, tmp_path):
        class Weird:
            shape = (2, 2, 2)
            n = 8

        sys_ = LinearSystem.__new__(LinearSystem)
        sys_.operator = Weird()
        sys_.b = np.zeros((2, 2, 2))
        sys_.x_true = None
        sys_.name = "weird"
        sys_.meta = {}
        with pytest.raises(TypeError, match="cannot persist"):
            save_system(sys_, tmp_path / "w")

    def test_suffix_appended(self, tmp_path):
        sys_ = poisson_system((4, 4, 4))
        p = save_system(sys_, tmp_path / "noext")
        assert p.name == "noext.npz"
