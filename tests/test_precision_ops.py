"""Tests for repro.precision.ops: the mixed-precision kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.precision import (
    Precision,
    as_storage,
    axpy,
    dot,
    dot_fp16_fp32,
    fmac,
    norm2,
    scale,
    tree_sum,
    vadd,
    vmul,
    vsub,
    xpay,
)

RNG = np.random.default_rng(7)

finite_f = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)
small_arrays = hnp.arrays(np.float64, st.integers(1, 64), elements=finite_f)


class TestAsStorage:
    def test_rounds_to_fp16(self):
        x = np.array([1.0 + 2.0**-12])  # not representable in fp16
        out = as_storage(x, "mixed")
        assert out.dtype == np.float16
        assert float(out[0]) == 1.0

    def test_no_copy_when_already_storage(self):
        x = np.ones(4, dtype=np.float16)
        assert as_storage(x, "mixed") is x


class TestAxpy:
    def test_double_exact(self):
        x = RNG.standard_normal(32)
        y = RNG.standard_normal(32)
        np.testing.assert_allclose(axpy(2.5, x, y), y + 2.5 * x)

    def test_fp16_rounding(self):
        """Each fp16 op rounds: result must be representable in fp16."""
        x = RNG.standard_normal(32).astype(np.float16)
        y = RNG.standard_normal(32).astype(np.float16)
        out = axpy(0.333, x, y, "mixed")
        assert out.dtype == np.float16
        np.testing.assert_array_equal(out, out.astype(np.float16))

    def test_fp16_scalar_is_rounded(self):
        """The scalar enters at fp16 in the multiply."""
        x = np.ones(4, dtype=np.float16)
        y = np.zeros(4, dtype=np.float16)
        a = 1.0 + 2.0**-13  # rounds to 1.0 in fp16
        out = axpy(a, x, y, "mixed")
        np.testing.assert_array_equal(out, np.ones(4, dtype=np.float16))

    def test_out_parameter(self):
        x = np.ones(8, dtype=np.float16)
        y = np.ones(8, dtype=np.float16)
        out = np.empty(8, dtype=np.float16)
        ret = axpy(2.0, x, y, "mixed", out=out)
        assert ret is out
        np.testing.assert_array_equal(out, np.full(8, 3.0, dtype=np.float16))

    def test_xpay_matches_definition(self):
        x = RNG.standard_normal(16)
        y = RNG.standard_normal(16)
        np.testing.assert_allclose(xpay(x, 3.0, y), x + 3.0 * y)


class TestElementwise:
    def test_vadd_vsub_vmul_double(self):
        x = RNG.standard_normal(16)
        y = RNG.standard_normal(16)
        np.testing.assert_allclose(vadd(x, y), x + y)
        np.testing.assert_allclose(vsub(x, y), x - y)
        np.testing.assert_allclose(vmul(x, y), x * y)

    def test_scale_fp16(self):
        x = np.full(4, 3.0, dtype=np.float16)
        out = scale(2.0, x, "mixed")
        assert out.dtype == np.float16
        np.testing.assert_array_equal(out, np.full(4, 6.0, dtype=np.float16))


class TestFmac:
    def test_fp16_product_not_pre_rounded(self):
        """FMAC adds the *exact* product: pick a, b whose fp16 product
        rounds away from the exact value and check fmac keeps the exact
        product through the accumulate."""
        a = np.array([np.float16(1.0009765625)])  # 1 + 2^-10
        b = np.array([np.float16(1.0009765625)])
        acc = np.array([np.float16(0.0)])
        exact = float(a[0]) * float(b[0])
        out = fmac(acc, a, b, "mixed")
        # result is the fp16 rounding of the exact product (not of the
        # doubly-rounded one) -- for this value both agree; the stronger
        # check is against fp32 intermediate:
        assert float(out[0]) == np.float16(np.float32(exact))

    def test_double_fmac(self):
        acc = RNG.standard_normal(8)
        a = RNG.standard_normal(8)
        b = RNG.standard_normal(8)
        np.testing.assert_allclose(fmac(acc, a, b), acc + a * b)


class TestDot:
    def test_mixed_dot_uses_fp32_accumulation(self):
        """Summing n copies of 1 + eps16: a pure fp16 accumulator loses
        the epsilons (and stagnates at 2048); the mixed dot keeps them."""
        n = 4096
        x = np.full(n, 1.0, dtype=np.float16)
        y = np.full(n, 1.0, dtype=np.float16)
        d_mixed = dot(x, y, "mixed")
        d_half = dot(x, y, "half")
        assert d_mixed == pytest.approx(n, rel=1e-6)
        assert d_half == 2048.0  # fp16 accumulation stagnates at 2048

    def test_half_dot_stagnation(self):
        """fp16 accumulator cannot exceed 2048 when adding ones (adding
        1.0 to 2048 rounds back to 2048)."""
        n = 4096
        x = np.ones(n, dtype=np.float16)
        assert dot(x, x, "half") == 2048.0

    def test_dot_fp16_fp32_instruction(self):
        x = RNG.standard_normal(128).astype(np.float16)
        y = RNG.standard_normal(128).astype(np.float16)
        got = dot_fp16_fp32(x, y)
        ref = np.dot(x.astype(np.float64), y.astype(np.float64))
        assert got == pytest.approx(ref, rel=1e-5)
        assert isinstance(got, np.float32)

    def test_double_dot_exactish(self):
        x = RNG.standard_normal(100)
        y = RNG.standard_normal(100)
        assert dot(x, y, "double") == pytest.approx(np.dot(x, y))

    @given(small_arrays)
    @settings(max_examples=40, deadline=None)
    def test_mixed_dot_error_bound(self, x):
        """|mixed_dot - exact_dot_of_fp16_values| <= n * eps32 * sum|prod|."""
        xh = x.astype(np.float16)
        exact = np.dot(xh.astype(np.float64), xh.astype(np.float64))
        got = dot(xh, xh, "mixed")
        bound = max(len(x), 1) * 2**-24 * np.sum(np.abs(xh.astype(np.float64)) ** 2)
        assert abs(got - exact) <= bound + 1e-12

    def test_norm2(self):
        x = np.array([3.0, 4.0])
        assert norm2(x, "double") == pytest.approx(5.0)

    def test_norm2_nonnegative_under_rounding(self):
        x = (RNG.standard_normal(64) * 1e-4).astype(np.float16)
        assert norm2(x, "mixed") >= 0.0


class TestTreeSum:
    def test_matches_plain_sum_fp64(self):
        vals = RNG.standard_normal((6, 8))
        got = tree_sum(vals, dtype=np.float64)
        assert got == pytest.approx(vals.sum(), rel=1e-12)

    def test_fp32_accuracy(self):
        vals = RNG.standard_normal((10, 10)).astype(np.float32)
        got = tree_sum(vals, dtype=np.float32)
        assert got == pytest.approx(float(vals.astype(np.float64).sum()), abs=1e-4)

    def test_1d_input_treated_as_row(self):
        vals = np.arange(10.0)
        assert tree_sum(vals, dtype=np.float64) == pytest.approx(45.0)

    @given(
        hnp.arrays(
            np.float64,
            st.tuples(st.integers(1, 8), st.integers(1, 8)),
            elements=finite_f,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_tree_sum_property(self, vals):
        got = tree_sum(vals, dtype=np.float64)
        assert got == pytest.approx(vals.sum(), rel=1e-10, abs=1e-9)


def _bits(x) -> np.ndarray:
    """fp16 array as raw uint16 bit patterns (bit-exact comparison)."""
    return np.asarray(x, dtype=np.float16).view(np.uint16)


fp16_finite = st.floats(
    min_value=-1000.0, max_value=1000.0,
    allow_nan=False, allow_infinity=False, width=16,
)
fp16_arrays = hnp.arrays(np.float16, st.integers(1, 64), elements=fp16_finite)


class TestRoundToNearestEven:
    """Audit: the fp16 paths round to nearest, ties to even, bit-exactly
    as IEEE 754 binary16 (= NumPy float16) — the CS-1's rounding mode."""

    def test_tie_rounds_to_even_mantissa(self):
        # ulp(1.0) = 2^-10 in fp16; a half-ulp tie picks the even mantissa.
        assert float(np.float16(1.0 + 2.0**-11)) == 1.0          # down: even
        assert float(np.float16(1.0 + 3 * 2.0**-11)) == 1.0 + 2.0**-9  # up
        # Integer ties above 2048 (ulp = 2): odd integers are exact ties.
        assert float(np.float16(2049.0)) == 2048.0
        assert float(np.float16(2051.0)) == 2052.0

    def test_vadd_tie_cases(self):
        x = np.array([2048.0, 2048.0], dtype=np.float16)
        y = np.array([1.0, 3.0], dtype=np.float16)
        out = vadd(x, y, "mixed")
        np.testing.assert_array_equal(
            _bits(out), _bits(np.array([2048.0, 2052.0], dtype=np.float16))
        )

    def test_fmac_exact_product_vs_double_rounding(self):
        """A case where pre-rounding the product changes the answer:
        fmac must match the single-rounded fp32-product path bit for bit,
        and differ from the doubly-rounded fp16-product path."""
        a = np.array([np.float16(1.0 + 2.0**-10)] * 2)
        b = np.array([np.float16(1.0 + 2.0**-9)] * 2)
        acc = np.array([np.float16(-1.0)] * 2)
        out = fmac(acc, a, b, "mixed")
        single = np.float16(
            np.float32(a[0]) * np.float32(b[0]) + np.float32(acc[0])
        )
        double = np.float16(np.float16(a[0] * b[0]) + acc[0])
        assert single != double  # the probe actually discriminates
        np.testing.assert_array_equal(_bits(out), _bits([single, single]))

    @given(fp16_arrays, fp16_arrays, fp16_finite)
    @settings(max_examples=60, deadline=None)
    def test_axpy_bit_exact_vs_numpy_float16(self, x, y, a):
        n = min(len(x), len(y))
        x, y = x[:n], y[:n]
        with np.errstate(over="ignore", invalid="ignore"):
            got = axpy(a, x, y, "mixed")
            a16 = np.float16(np.float32(a))
            ref = np.float16(x * a16 + y)
            np.testing.assert_array_equal(_bits(got), _bits(ref))

    @given(fp16_arrays, fp16_arrays)
    @settings(max_examples=60, deadline=None)
    def test_elementwise_bit_exact_vs_numpy_float16(self, x, y):
        n = min(len(x), len(y))
        x, y = x[:n], y[:n]
        with np.errstate(over="ignore", invalid="ignore"):
            np.testing.assert_array_equal(
                _bits(vadd(x, y, "mixed")), _bits(np.float16(x + y)))
            np.testing.assert_array_equal(
                _bits(vsub(x, y, "mixed")), _bits(np.float16(x - y)))
            np.testing.assert_array_equal(
                _bits(vmul(x, y, "mixed")), _bits(np.float16(x * y)))

    @given(fp16_arrays, fp16_arrays)
    @settings(max_examples=60, deadline=None)
    def test_mixed_dot_bit_exact_fp32_reduce(self, x, y):
        """dot_fp16_fp32 == fp32 reduce over exact fp32 products, bitwise."""
        n = min(len(x), len(y))
        x, y = x[:n], y[:n]
        got = dot_fp16_fp32(x, y)
        ref = np.add.reduce(
            x.astype(np.float32) * y.astype(np.float32), dtype=np.float32
        )
        assert got.view(np.uint32) == np.float32(ref).view(np.uint32)

    def test_subnormal_fp16_preserved(self):
        """Ops pass fp16 subnormals through NumPy untouched (no flush)."""
        tiny = np.float16(2.0**-24)  # smallest positive subnormal
        x = np.array([tiny, tiny], dtype=np.float16)
        out = vadd(x, x, "mixed")
        np.testing.assert_array_equal(
            _bits(out), _bits(np.array([2.0**-23] * 2, dtype=np.float16))
        )
