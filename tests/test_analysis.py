"""Tests for the reporting helpers."""

import numpy as np
import pytest

from repro.analysis import ascii_plot, format_series, format_table, paper_vs_measured


class TestFormatTable:
    def test_basic(self):
        out = format_table(["a", "bb"], [(1, 2.5), (30, 4.123456)])
        lines = out.splitlines()
        assert "a" in lines[0] and "bb" in lines[0]
        assert "4.123" in out

    def test_title(self):
        out = format_table(["x"], [(1,)], title="Table I")
        assert out.startswith("Table I")

    def test_column_alignment(self):
        out = format_table(["col"], [("xyz",), ("a",)])
        lines = out.splitlines()
        assert len(lines[-1]) == len(lines[-2])

    def test_floatfmt(self):
        out = format_table(["v"], [(0.123456789,)], floatfmt=".2e")
        assert "1.23e-01" in out


class TestSeriesAndPlot:
    def test_format_series(self):
        out = format_series([1, 2], [10.0, 20.0], "cores", "ms")
        assert "cores" in out and "ms" in out

    def test_ascii_plot_contains_marks(self):
        x = np.arange(10)
        out = ascii_plot(x, {"a": x * 1.0, "b": x * 2.0})
        assert "*" in out and "o" in out
        assert "a" in out and "b" in out

    def test_ascii_plot_log_scale(self):
        x = np.arange(1, 6)
        out = ascii_plot(x, {"s": 10.0 ** x}, logy=True)
        assert "1e" in out

    def test_ascii_plot_constant_series(self):
        out = ascii_plot([0, 1], {"c": [5.0, 5.0]})
        assert "*" in out


class TestPaperVsMeasured:
    def test_records_rendered(self):
        out = paper_vs_measured([
            {"quantity": "PFLOPS", "paper": 0.86, "measured": 0.859},
            {"quantity": "iter time", "paper": "28.1 us", "measured": "28.1 us",
             "note": "calibrated"},
        ])
        assert "PFLOPS" in out
        assert "calibrated" in out
