"""Tests for routers, links, and the fabric simulation loop."""

import numpy as np
import pytest

from repro.wse import Fabric, Port


class _SinkCore:
    """Minimal core recording deliveries."""

    def __init__(self):
        self.received = []
        self._tx = []

    def deliver(self, channel, value):
        self.received.append((channel, value))

    def poll_tx(self, channel):
        if self._tx and self._tx[0][0] == channel:
            return self._tx.pop(0)[1]
        return None

    def tx_channels(self):
        return [self._tx[0][0]] if self._tx else []

    def send(self, channel, value):
        self._tx.append((channel, value))

    def step(self):
        return 0

    @property
    def idle(self):
        return not self._tx


def _line_fabric(n, channel=0):
    """n tiles in a row; route channel eastward from tile 0 to tile n-1."""
    f = Fabric(n, 1)
    cores = [_SinkCore() for _ in range(n)]
    for x, c in enumerate(cores):
        f.attach_core(x, 0, c)
    f.router(0, 0).set_route(channel, Port.CORE, (Port.EAST,))
    for x in range(1, n - 1):
        f.router(x, 0).set_route(channel, Port.WEST, (Port.EAST,))
    f.router(n - 1, 0).set_route(channel, Port.WEST, (Port.CORE,))
    return f, cores


class TestRouting:
    def test_one_hop_per_cycle(self):
        f, cores = _line_fabric(4)
        cores[0].send(0, 42.0)
        # hop chain: inject (cycle 1 moves into router), then one hop per
        # cycle; delivery at the far end after ~n+1 cycles.
        for _ in range(3):
            f.step()
        assert not cores[3].received  # too early: 3 hops + inject needed
        for _ in range(3):
            f.step()
        assert cores[3].received == [(0, 42.0)]

    def test_word_order_preserved(self):
        f, cores = _line_fabric(3)
        for v in (1.0, 2.0, 3.0):
            cores[0].send(0, v)
        f.run(max_cycles=50)
        assert [v for _, v in cores[2].received] == [1.0, 2.0, 3.0]

    def test_fanout_duplicates_word(self):
        """A router can forward one input word to multiple output ports."""
        f = Fabric(3, 1)
        left, mid, right = _SinkCore(), _SinkCore(), _SinkCore()
        f.attach_core(0, 0, left)
        f.attach_core(1, 0, mid)
        f.attach_core(2, 0, right)
        f.router(1, 0).set_route(5, Port.CORE, (Port.EAST, Port.WEST, Port.CORE))
        f.router(0, 0).set_route(5, Port.EAST, (Port.CORE,))
        f.router(2, 0).set_route(5, Port.WEST, (Port.CORE,))
        mid.send(5, 9.0)
        f.run(max_cycles=20)
        assert left.received == [(5, 9.0)]
        assert mid.received == [(5, 9.0)]
        assert right.received == [(5, 9.0)]

    def test_channels_are_independent(self):
        f = Fabric(2, 1)
        a, b = _SinkCore(), _SinkCore()
        f.attach_core(0, 0, a)
        f.attach_core(1, 0, b)
        f.router(0, 0).set_route(1, Port.CORE, (Port.EAST,))
        f.router(0, 0).set_route(2, Port.CORE, (Port.EAST,))
        f.router(1, 0).set_route(1, Port.WEST, (Port.CORE,))
        f.router(1, 0).set_route(2, Port.WEST, (Port.CORE,))
        a.send(1, 1.0)
        a.send(2, 2.0)
        f.run(max_cycles=20)
        assert sorted(b.received) == [(1, 1.0), (2, 2.0)]

    def test_missing_route_is_loud(self):
        f = Fabric(2, 1)
        a, b = _SinkCore(), _SinkCore()
        f.attach_core(0, 0, a)
        f.attach_core(1, 0, b)
        f.router(0, 0).set_route(0, Port.CORE, (Port.EAST,))
        # no route configured at (1,0) for channel 0 port W
        a.send(0, 1.0)
        with pytest.raises(RuntimeError, match="no configured route"):
            f.run(max_cycles=20)

    def test_route_off_fabric_is_loud(self):
        f = Fabric(2, 1)
        a = _SinkCore()
        f.attach_core(0, 0, a)
        f.router(0, 0).set_route(0, Port.CORE, (Port.WEST,))  # off the edge
        a.send(0, 1.0)
        with pytest.raises(RuntimeError, match="off the fabric"):
            f.run(max_cycles=20)

    def test_conflicting_reroute_rejected(self):
        f = Fabric(2, 2)
        f.router(0, 0).set_route(0, Port.CORE, (Port.EAST,))
        with pytest.raises(ValueError, match="already routed"):
            f.router(0, 0).set_route(0, Port.CORE, (Port.NORTH,))
        # identical re-declaration is fine
        f.router(0, 0).set_route(0, Port.CORE, (Port.EAST,))

    def test_deadlock_timeout(self):
        f, cores = _line_fabric(3)
        cores[0].send(0, 1.0)
        with pytest.raises(RuntimeError, match="quiesce"):
            f.run(max_cycles=2)

    def test_quiescent_initially(self):
        f, _ = _line_fabric(3)
        assert f.quiescent()

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            Fabric(0, 3)

    def test_throughput_one_word_per_cycle(self):
        """A stream of k words takes ~k + distance cycles end to end."""
        n, k = 4, 10
        f, cores = _line_fabric(n)
        for v in range(k):
            cores[0].send(0, float(v))
        cycles = f.run(max_cycles=200)
        assert len(cores[n - 1].received) == k
        assert cycles <= k + 2 * n + 4
