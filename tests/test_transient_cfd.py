"""Tests for the transient SIMPLE solver (time-accurate mode)."""

import numpy as np
import pytest

from repro.cfd import (
    FlowField,
    StaggeredMesh2D,
    TransientSimpleSolver,
    lid_driven_cavity,
    u_momentum_system,
)


def _transient(n=12, re=100.0, dt=0.05, iters=6):
    steady = lid_driven_cavity(n=n, reynolds=re)
    return TransientSimpleSolver(steady, dt=dt, simple_iters_per_step=iters)


class TestTimeTermAssembly:
    def test_dt_strengthens_diagonal(self):
        m = StaggeredMesh2D(8, 8)
        f = FlowField(m)
        A0, _, _ = u_momentum_system(m, f, mu=0.01, u_lid=1.0)
        A1, _, _ = u_momentum_system(m, f, mu=0.01, u_lid=1.0, dt=0.01)
        assert np.all(A1.coeffs["diag"] > A0.coeffs["diag"])

    def test_inertia_couples_to_old_field(self):
        m = StaggeredMesh2D(8, 8)
        f = FlowField(m)
        old = FlowField(m)
        old.u[1:-1, :] = 0.5
        _, b0, _ = u_momentum_system(m, f, mu=0.01, u_lid=1.0, dt=0.01,
                                     u_old=f.u)
        _, b1, _ = u_momentum_system(m, f, mu=0.01, u_lid=1.0, dt=0.01,
                                     u_old=old.u)
        a0 = m.dx * m.dy / 0.01
        np.testing.assert_allclose(b1 - b0, a0 * 0.5)

    def test_smaller_dt_larger_term(self):
        m = StaggeredMesh2D(8, 8)
        f = FlowField(m)
        A_a, _, _ = u_momentum_system(m, f, mu=0.01, u_lid=1.0, dt=0.1)
        A_b, _, _ = u_momentum_system(m, f, mu=0.01, u_lid=1.0, dt=0.01)
        assert np.all(A_b.coeffs["diag"] > A_a.coeffs["diag"])


class TestTransientRun:
    @pytest.fixture(scope="class")
    def spinup(self):
        return _transient().run(n_steps=20)

    def test_kinetic_energy_grows_from_rest(self, spinup):
        """Impulsively started lid: energy must grow monotonically in
        the early spin-up."""
        ke = spinup.kinetic_energy_history
        assert ke[0] == 0.0
        assert all(b >= a - 1e-12 for a, b in zip(ke[:10], ke[1:11]))
        assert ke[-1] > 0

    def test_growth_saturates(self, spinup):
        """Energy injection slows as the flow approaches steady state."""
        ke = spinup.kinetic_energy_history
        early = ke[3] - ke[1]
        late = ke[-1] - ke[-3]
        assert late < early

    def test_walls_remain_impermeable(self, spinup):
        f = spinup.field
        assert np.all(f.u[0, :] == 0) and np.all(f.u[-1, :] == 0)
        assert np.all(f.v[:, 0] == 0) and np.all(f.v[:, -1] == 0)

    def test_approaches_steady_solution(self):
        """Long transient ~ steady SIMPLE solution (coarse tolerance —
        different relaxation paths)."""
        steady = lid_driven_cavity(n=12, reynolds=100.0)
        s_res = steady.solve(max_outer=300, tol=1e-5)
        t_res = _transient(n=12, dt=0.2, iters=10).run(n_steps=40)
        su = s_res.field.u
        tu = t_res.field.u
        scale = np.abs(su).max()
        assert np.abs(su - tu).max() / scale < 0.15

    def test_summary(self, spinup):
        assert "timesteps" in spinup.summary()

    def test_mass_conserved_each_step(self, spinup):
        assert spinup.continuity_residuals[-1] < 0.05


class TestValidation:
    def test_bad_dt(self):
        with pytest.raises(ValueError):
            _transient(dt=-1.0)

    def test_bad_iters(self):
        with pytest.raises(ValueError):
            _transient(iters=0)

    def test_paper_iteration_band(self):
        """Paper: 'the number of simple iterations ranges from 5-20 per
        time step' — default within the band."""
        t = _transient()
        assert 5 <= t.simple_iters_per_step <= 20
