"""Tests for the whole-program static analyzer (repro.wse.analyze).

Two families:

* **seeded defects** — deliberately broken programs, one per analyzer
  pass, each of which must yield *exactly one* diagnostic of the right
  kind (no cycle simulated anywhere);
* **shipped programs** — every kernel program the repo ships must
  analyze clean (zero false positives).
"""

import numpy as np
import pytest

from repro.wse import CS1, Core, Fabric, Port, TileMemory
from repro.wse.analyze import (
    AnalysisError,
    Diagnostic,
    FabricRef,
    FifoRef,
    InstrDecl,
    MemRef,
    ScalarRef,
    Severity,
    analyze_program,
)
from repro.wse.dsr import Action


def _fabric_with_cores(w, h):
    f = Fabric(w, h)
    for y in range(h):
        for x in range(w):
            f.attach_core(x, y, Core(x, y, CS1))
    return f


def _noop(core):
    pass


# ----------------------------------------------------------------------
# Pass 1: routing
# ----------------------------------------------------------------------
class TestRoutingDefects:
    def test_dead_end_route(self):
        f = _fabric_with_cores(3, 1)
        f.router(0, 0).set_route(0, Port.CORE, (Port.EAST,))
        # no continuation at (1,0)
        report = analyze_program(f)
        assert len(report) == 1
        (d,) = report
        assert (d.pass_name, d.kind) == ("routing", "dead-end")
        assert d.where == (1, 0) and d.channel == 0
        assert d.severity is Severity.ERROR

    def test_two_disjoint_loops_two_findings(self):
        """Every distinct forwarding loop is reported, not just the first."""
        f = _fabric_with_cores(4, 1)
        # Loop A between tiles 0 and 1, loop B between tiles 2 and 3.
        f.router(0, 0).set_route(0, Port.EAST, (Port.EAST,))
        f.router(1, 0).set_route(0, Port.WEST, (Port.WEST,))
        f.router(2, 0).set_route(0, Port.EAST, (Port.EAST,))
        f.router(3, 0).set_route(0, Port.WEST, (Port.WEST,))
        report = analyze_program(f, passes=("routing",))
        cycles = report.by_kind("cycle")
        assert len(cycles) == 2
        anchors = sorted(d.where for d in cycles)
        assert anchors == [(0, 0), (2, 0)]

    def test_raise_on_error_carries_report(self):
        f = _fabric_with_cores(3, 1)
        f.router(0, 0).set_route(0, Port.CORE, (Port.EAST,))
        with pytest.raises(AnalysisError, match="dead-end") as exc:
            analyze_program(f).raise_on_error()
        assert len(exc.value.report.errors) == 1


# ----------------------------------------------------------------------
# Pass 2: flow conservation
# ----------------------------------------------------------------------
class TestFlowDefects:
    def _two_tile(self):
        f = _fabric_with_cores(2, 1)
        a, b = f.core(0, 0), f.core(1, 0)
        f.router(0, 0).set_route(5, Port.CORE, (Port.EAST,))
        f.router(1, 0).set_route(5, Port.WEST, (Port.CORE,))
        a.memory.alloc("src", 10, np.float16)
        a.program_decl.launched(InstrDecl(
            "copy", FabricRef(5, 10), (MemRef("src", 0, 10),),
            length=10, thread=0,
        ))
        return f, a, b

    def test_over_supply(self):
        f, a, b = self._two_tile()
        b.subscribe(5)
        b.memory.alloc("dst", 8, np.float16)
        b.program_decl.launched(InstrDecl(
            "addin", MemRef("dst", 0, 8), (FabricRef(5, 8),),
            length=8, thread=0,
        ))
        report = analyze_program(f)
        assert len(report) == 1
        (d,) = report
        assert (d.pass_name, d.kind) == ("flow", "over-supply")
        assert d.where == (1, 0) and d.channel == 5

    def test_under_supply(self):
        f, a, b = self._two_tile()
        b.subscribe(5)
        b.memory.alloc("dst", 16, np.float16)
        b.program_decl.launched(InstrDecl(
            "addin", MemRef("dst", 0, 16), (FabricRef(5, 16),),
            length=16, thread=0,
        ))
        report = analyze_program(f)
        assert [d.kind for d in report] == ["under-supply"]

    def test_unconsumed_stream(self):
        f, a, b = self._two_tile()
        # Receiver declares nothing at all on channel 5.
        b.program_decl.launched(InstrDecl("nop", None))
        report = analyze_program(f)
        assert [d.kind for d in report] == ["unconsumed"]
        assert report.diagnostics[0].where == (1, 0)

    def test_starved_receiver(self):
        f = _fabric_with_cores(1, 1)
        core = f.core(0, 0)
        f.router(0, 0).set_route(5, Port.CORE, (Port.CORE,))
        core.subscribe(5)
        core.memory.alloc("dst", 8, np.float16)
        core.program_decl.launched(InstrDecl(
            "addin", MemRef("dst", 0, 8), (FabricRef(5, 8),),
            length=8, thread=0,
        ))
        report = analyze_program(f)
        assert [d.kind for d in report] == ["starved"]

    def test_tx_without_route(self):
        f = _fabric_with_cores(1, 1)
        core = f.core(0, 0)
        core.memory.alloc("src", 10, np.float16)
        core.program_decl.launched(InstrDecl(
            "copy", FabricRef(5, 10), (MemRef("src", 0, 10),),
            length=10, thread=0,
        ))
        report = analyze_program(f)
        assert [d.kind for d in report] == ["tx-no-route"]

    def test_subscriber_mismatch(self):
        f, a, b = self._two_tile()
        b.subscribe(5)
        b.subscribe(5)  # two arrival queues, one declared receive
        b.memory.alloc("dst", 10, np.float16)
        b.program_decl.launched(InstrDecl(
            "addin", MemRef("dst", 0, 10), (FabricRef(5, 10),),
            length=10, thread=0,
        ))
        report = analyze_program(f)
        assert [d.kind for d in report] == ["subscriber-mismatch"]


# ----------------------------------------------------------------------
# Pass 3: task graph
# ----------------------------------------------------------------------
class TestTaskGraphDefects:
    def test_never_activated(self):
        f = _fabric_with_cores(1, 1)
        core = f.core(0, 0)
        core.scheduler.add("orphan_task", _noop)
        core.program_decl.task("orphan_task")
        report = analyze_program(f)
        assert len(report) == 1
        (d,) = report
        assert (d.pass_name, d.kind) == ("tasks", "never-activated")
        assert "orphan_task" in d.message

    def test_never_unblocked(self):
        f = _fabric_with_cores(1, 1)
        core = f.core(0, 0)
        core.scheduler.add("stuck", _noop, blocked=True)
        core.scheduler.activate("stuck")
        core.program_decl.task("stuck")
        report = analyze_program(f)
        assert [d.kind for d in report] == ["never-unblocked"]

    def test_activation_chain_is_followed(self):
        """A task activated transitively through completions is live."""
        f = _fabric_with_cores(1, 1)
        core = f.core(0, 0)
        core.scheduler.add("first", _noop)
        core.scheduler.add("second", _noop)
        core.scheduler.activate("first")
        core.memory.alloc("buf", 8, np.float16)
        core.program_decl.task("first", launches=(InstrDecl(
            "copy", MemRef("buf", 0, 8), (MemRef("buf", 0, 8),),
            length=8, thread=0,
            completions=(("second", Action.ACTIVATE),),
        ),))
        core.program_decl.task("second")
        assert analyze_program(f).ok

    def test_fifo_with_no_consumer(self):
        f = _fabric_with_cores(1, 1)
        core = f.core(0, 0)
        core.make_fifo("orphan", capacity=20, activates=None)
        core.scheduler.add("producer", _noop)
        core.scheduler.activate("producer")
        core.memory.alloc("src", 16, np.float16)
        core.program_decl.task("producer", launches=(InstrDecl(
            "mul", FifoRef("orphan", 10),
            (MemRef("src", 0, 10), MemRef("src", 0, 10)),
            length=10, thread=0,
        ),))
        report = analyze_program(f)
        assert len(report) == 1
        (d,) = report
        assert (d.pass_name, d.kind) == ("tasks", "fifo-no-consumer")
        assert "orphan" in d.message

    def test_fifo_overflow_without_push_trigger(self):
        f = _fabric_with_cores(1, 1)
        core = f.core(0, 0)
        core.make_fifo("burst", capacity=8, activates=None)
        core.scheduler.add("producer", _noop)
        core.scheduler.add("drainer", _noop)
        core.scheduler.activate("producer")
        core.scheduler.activate("drainer")
        core.memory.alloc("src", 32, np.float16)
        core.program_decl.task("producer", launches=(InstrDecl(
            "mul", FifoRef("burst", 20),
            (MemRef("src", 0, 20), MemRef("src", 0, 20)),
            length=20, thread=0,
        ),))
        core.program_decl.task("drainer", drains=("burst",))
        report = analyze_program(f)
        assert [d.kind for d in report] == ["fifo-overflow"]

    def test_push_triggered_drain_is_clean(self):
        """The Listing 1 shape: burst > capacity is fine when pushes
        activate the draining task (back-pressure + reactive drain)."""
        f = _fabric_with_cores(1, 1)
        core = f.core(0, 0)
        core.make_fifo("term", capacity=8, activates="drainer")
        core.scheduler.add("producer", _noop)
        core.scheduler.add("drainer", _noop, priority=1)
        core.scheduler.activate("producer")
        core.memory.alloc("src", 32, np.float16)
        core.program_decl.task("producer", launches=(InstrDecl(
            "mul", FifoRef("term", 20),
            (MemRef("src", 0, 20), MemRef("src", 0, 20)),
            length=20, thread=0,
        ),))
        core.program_decl.task("drainer", drains=("term",))
        assert analyze_program(f).ok

    def test_declaration_drift_is_reported(self):
        f = _fabric_with_cores(1, 1)
        core = f.core(0, 0)
        core.scheduler.add("real", _noop)
        core.scheduler.activate("real")
        core.program_decl.task("imagined")
        report = analyze_program(f)
        kinds = sorted(d.kind for d in report)
        assert kinds == ["undeclared-task", "unknown-task"]


# ----------------------------------------------------------------------
# Pass 4: DSR memory safety
# ----------------------------------------------------------------------
class TestDsrDefects:
    def test_off_by_one_extent(self):
        f = _fabric_with_cores(1, 1)
        core = f.core(0, 0)
        core.memory.alloc("src", 8, np.float16)
        core.memory.alloc("dst", 8, np.float16)
        core.program_decl.launched(InstrDecl(
            "copy", MemRef("dst", 0, 9), (MemRef("src", 0, 8),),
            length=9, thread=0, name="oops",
        ))
        report = analyze_program(f)
        assert len(report) == 1
        (d,) = report
        assert (d.pass_name, d.kind) == ("dsr", "out-of-bounds")
        assert "reaches index 8 of 8" in d.message

    def test_strided_overrun(self):
        f = _fabric_with_cores(1, 1)
        core = f.core(0, 0)
        core.memory.alloc("grid", 20, np.float16)
        core.program_decl.launched(InstrDecl(
            "copy", MemRef("grid", 5, 4, stride=6), (), length=4, thread=0,
        ))
        report = analyze_program(f)
        assert [d.kind for d in report] == ["out-of-bounds"]

    def test_unknown_array(self):
        f = _fabric_with_cores(1, 1)
        core = f.core(0, 0)
        core.program_decl.launched(InstrDecl(
            "copy", MemRef("ghost", 0, 4), (), length=4, thread=0,
        ))
        report = analyze_program(f)
        assert [d.kind for d in report] == ["unknown-array"]

    def test_concurrent_write_race(self):
        f = _fabric_with_cores(1, 1)
        core = f.core(0, 0)
        core.scheduler.add("racy", _noop)
        core.scheduler.activate("racy")
        core.memory.alloc("buf", 16, np.float16)
        core.program_decl.task("racy", launches=(
            InstrDecl("copy", MemRef("buf", 0, 10), (), length=10,
                      thread=0, name="writer_a"),
            InstrDecl("copy", MemRef("buf", 8, 8), (), length=8,
                      thread=1, name="writer_b"),
        ))
        report = analyze_program(f)
        assert len(report) == 1
        (d,) = report
        assert (d.pass_name, d.kind) == ("dsr", "write-race")

    def test_main_thread_writes_are_sequential(self):
        """Two overlapping writes queued on the main thread never race."""
        f = _fabric_with_cores(1, 1)
        core = f.core(0, 0)
        core.scheduler.add("seq", _noop)
        core.scheduler.activate("seq")
        core.memory.alloc("buf", 16, np.float16)
        core.program_decl.task("seq", launches=(
            InstrDecl("copy", MemRef("buf", 0, 10), (), length=10,
                      thread=None),
            InstrDecl("copy", MemRef("buf", 8, 8), (), length=8,
                      thread=None),
        ))
        assert analyze_program(f).ok

    def test_disjoint_strided_writes_do_not_race(self):
        """Interleaved columns (same array, disjoint index sets)."""
        f = _fabric_with_cores(1, 1)
        core = f.core(0, 0)
        core.scheduler.add("cols", _noop)
        core.scheduler.activate("cols")
        core.memory.alloc("buf", 16, np.float16)
        core.program_decl.task("cols", launches=(
            InstrDecl("copy", MemRef("buf", 0, 8, stride=2), (), length=8,
                      thread=0),
            InstrDecl("copy", MemRef("buf", 1, 8, stride=2), (), length=8,
                      thread=1),
        ))
        assert analyze_program(f).ok


# ----------------------------------------------------------------------
# Pass 5: SRAM budget
# ----------------------------------------------------------------------
class TestSramDefects:
    def test_over_capacity_plan(self):
        f = _fabric_with_cores(1, 1)
        core = f.core(0, 0)
        # Side-step the allocator's own hard cap so the *plan* is
        # representable; the analyzer checks it against the machine
        # budget (48 KB on the CS-1).
        core.memory = TileMemory(10**6)
        core.memory.alloc("big", 40_000, np.float16)  # 80 kB
        report = analyze_program(f)
        assert len(report) == 1
        (d,) = report
        assert (d.pass_name, d.kind) == ("sram", "over-budget")
        assert "80000" in d.message

    def test_budget_override(self):
        f = _fabric_with_cores(1, 1)
        f.core(0, 0).memory.alloc("a", 1024, np.float16)  # 2 kB
        assert analyze_program(f).ok
        report = analyze_program(f, sram_budget=1024)
        assert [d.kind for d in report] == ["over-budget"]

    def test_worst_tile_note(self):
        f = _fabric_with_cores(2, 1)
        f.core(0, 0).memory.alloc("a", 100, np.float16)
        f.core(1, 0).memory.alloc("a", 200, np.float16)
        report = analyze_program(f)
        assert report.ok
        assert any("worst tile (1,0)" in n for n in report.notes)


# ----------------------------------------------------------------------
# Pass 6: precision lint
# ----------------------------------------------------------------------
class TestPrecisionDefects:
    def test_fp16_accumulator_reduction(self):
        f = _fabric_with_cores(1, 1)
        core = f.core(0, 0)
        core.memory.alloc("x", 8, np.float16)
        core.memory.alloc("y", 8, np.float16)
        core.program_decl.launched(InstrDecl(
            "mac", ScalarRef("float16"),
            (MemRef("x", 0, 8), MemRef("y", 0, 8)),
            length=8, thread=0, name="bad_dot",
        ))
        report = analyze_program(f)
        assert len(report) == 1
        (d,) = report
        assert (d.pass_name, d.kind) == ("precision", "fp16-accumulator")

    def test_fp32_accumulator_is_clean(self):
        f = _fabric_with_cores(1, 1)
        core = f.core(0, 0)
        core.memory.alloc("x", 8, np.float16)
        core.memory.alloc("y", 8, np.float16)
        core.program_decl.launched(InstrDecl(
            "mac", ScalarRef("float32"),
            (MemRef("x", 0, 8), MemRef("y", 0, 8)),
            length=8, thread=0, name="good_dot",
        ))
        assert analyze_program(f).ok


# ----------------------------------------------------------------------
# Diagnostics as values
# ----------------------------------------------------------------------
class TestDiagnosticValues:
    def test_value_equality(self):
        a = Diagnostic(Severity.ERROR, "dsr", "out-of-bounds", "m",
                       where=(1, 2), channel=None, hint="h")
        b = Diagnostic(Severity.ERROR, "dsr", "out-of-bounds", "m",
                       where=(1, 2), channel=None, hint="h")
        assert a == b and hash(a) == hash(b)
        assert a != Diagnostic(Severity.ERROR, "dsr", "out-of-bounds", "m",
                               where=(2, 1))

    def test_frozen(self):
        d = Diagnostic(Severity.ERROR, "dsr", "out-of-bounds", "m")
        with pytest.raises(AttributeError):
            d.kind = "other"

    def test_str_format(self):
        d = Diagnostic(Severity.WARNING, "flow", "under-supply", "msg",
                       where=(3, 4), channel=7, hint="fix it")
        s = str(d)
        assert s.startswith("[warning] flow/under-supply at (3,4) channel 7")
        assert "fix it" in s

    def test_report_selectors(self):
        f = _fabric_with_cores(3, 1)
        f.router(0, 0).set_route(0, Port.CORE, (Port.EAST,))
        report = analyze_program(f)
        assert len(report.by_pass("routing")) == 1
        assert len(report.by_kind("dead-end")) == 1
        assert report.by_pass("flow") == []
        assert "dead-end" in report.format()

    def test_unknown_pass_rejected(self):
        with pytest.raises(ValueError, match="unknown pass"):
            analyze_program(Fabric(1, 1), passes=("routing", "vibes"))


# ----------------------------------------------------------------------
# Shipped programs: zero false positives, no cycles simulated
# ----------------------------------------------------------------------
class TestShippedProgramsClean:
    @pytest.mark.parametrize("two_sum_tasks", [False, True])
    def test_spmv3d_clean(self, two_sum_tasks):
        from repro.kernels.spmv3d import build_spmv_fabric
        from repro.problems import Stencil7

        op, _b, _d = Stencil7.from_random((3, 3, 6)).jacobi_precondition()
        fabric, _ = build_spmv_fabric(op, np.zeros(op.shape),
                                      two_sum_tasks=two_sum_tasks)
        report = analyze_program(fabric)
        assert report.ok, report.format()
        assert fabric.cycle == 0  # statically — not one cycle simulated

    def test_spmv3d_degenerate_single_tile_clean(self):
        from repro.kernels.spmv3d import build_spmv_fabric
        from repro.problems import Stencil7

        op, _b, _d = Stencil7.from_random((1, 1, 8)).jacobi_precondition()
        fabric, _ = build_spmv_fabric(op, np.zeros(op.shape))
        assert analyze_program(fabric).ok

    @pytest.mark.parametrize("block_shape", [(3, 3), (2, 3), (6, 6), (2, 2)])
    def test_spmv2d_clean(self, block_shape):
        from repro.kernels.spmv2d_des import build_spmv2d_fabric
        from repro.problems.stencil9 import Stencil9

        op, _b, _d = Stencil9.from_random((6, 6)).jacobi_precondition()
        fabric, _ = build_spmv2d_fabric(op, np.zeros(op.shape), block_shape)
        report = analyze_program(fabric)
        assert report.ok, report.format()
        assert fabric.cycle == 0

    def test_blas_programs_clean(self):
        from repro.kernels.blas_des import build_axpy_fabric, build_dot_fabric

        x = np.linspace(-1, 1, 32)
        y = np.linspace(1, -1, 32)
        fa, _, _ = build_axpy_fabric(0.5, x, y, analyze=True)
        fd, _, _ = build_dot_fabric(x, y, analyze=True)
        assert analyze_program(fa).ok and analyze_program(fd).ok

    def test_allreduce_routing_clean(self):
        from repro.wse.allreduce import ReduceCore, allreduce_pattern
        from repro.wse.patterns import compile_to_fabric

        f = Fabric(6, 4)
        compile_to_fabric(allreduce_pattern(6, 4), f)
        for y in range(4):
            for x in range(6):
                f.attach_core(x, y, ReduceCore(x, y, 6, 4, 1.0))
        assert analyze_program(f).ok


class TestBuilderWiring:
    def test_build_spmv_fabric_analyze_flag(self):
        from repro.kernels.spmv3d import build_spmv_fabric, run_spmv_des
        from repro.problems import Stencil7

        op, _b, _d = Stencil7.from_random((2, 2, 4)).jacobi_precondition()
        build_spmv_fabric(op, np.zeros(op.shape), analyze=True)
        # And the run path still produces the right answer under analyze.
        v = 0.1 * np.random.default_rng(1).standard_normal(op.shape)
        u, _cycles = run_spmv_des(op, v, analyze=True)
        v16 = np.asarray(v, np.float16).astype(np.float64)
        expect = (op.to_csr() @ v16.ravel()).reshape(op.shape)
        tol = 8 * 2.0**-11 * (np.max(np.abs(expect)) + 1.0)
        assert np.max(np.abs(u - expect)) < tol

    def test_build_spmv2d_fabric_analyze_flag(self):
        from repro.kernels.spmv2d_des import build_spmv2d_fabric
        from repro.problems.stencil9 import Stencil9

        op, _b, _d = Stencil9.from_random((4, 4)).jacobi_precondition()
        build_spmv2d_fabric(op, np.zeros(op.shape), (2, 2), analyze=True)

    def test_bicgstab_des_analyze_flag(self):
        from repro.kernels.bicgstab_des import DESBiCGStab
        from repro.problems import Stencil7

        op, _b, _d = Stencil7.from_random((2, 2, 4)).jacobi_precondition()
        solver = DESBiCGStab(op, analyze=True)
        assert solver.report.total_cycles == 0  # probe build ran no cycles


# ----------------------------------------------------------------------
# Pass 7: channel dependency graph (deadlock freedom)
# ----------------------------------------------------------------------
class TestCdgPass:
    def _credit_ring(self):
        """Two routers forwarding channel 7 at each other forever."""
        f = _fabric_with_cores(2, 1)
        f.router(0, 0).set_route(7, Port.EAST, (Port.EAST,))
        f.router(1, 0).set_route(7, Port.WEST, (Port.WEST,))
        return f

    def test_credit_cycle_detected(self):
        f = self._credit_ring()
        report = analyze_program(f, passes=("cdg",))
        assert len(report) == 1
        (d,) = report
        assert (d.pass_name, d.kind) == ("cdg", "credit-cycle")
        assert d.severity is Severity.ERROR
        assert d.channel == 7
        # The finding carries the machine-readable cycle.
        assert d.data is not None and len(d.data) == 2
        assert all(node[2] == 7 for node in d.data)

    def test_acyclic_program_clean(self):
        f = _fabric_with_cores(3, 1)
        f.router(0, 0).set_route(7, Port.CORE, (Port.EAST,))
        f.router(1, 0).set_route(7, Port.WEST, (Port.EAST,))
        f.router(2, 0).set_route(7, Port.WEST, (Port.CORE,))
        assert analyze_program(f, passes=("cdg",)).ok

    def test_fanout_is_and_dependency(self):
        """A multicast hop depends on *every* destination FIFO, so a
        cycle through one fanout leg is still a cycle."""
        f = _fabric_with_cores(3, 1)
        # (1,0) forwards WEST arrivals both to its core and back WEST.
        f.router(0, 0).set_route(7, Port.EAST, (Port.EAST,))
        f.router(1, 0).set_route(7, Port.WEST, (Port.WEST, Port.CORE))
        report = analyze_program(f, passes=("cdg",))
        assert [d.kind for d in report] == ["credit-cycle"]

    @pytest.mark.parametrize("engine", ["active", "reference"])
    def test_counterexample_deadlocks_engine(self, engine):
        """The static finding is machine-checked: a minimal fabric
        synthesized from the cycle provably wedges the DES engine, and
        the raised error names the predicted cycle."""
        from repro.wse import FabricDeadlockError
        from repro.wse.analyze import (
            confirm_counterexample,
            synthesize_counterexample,
        )

        f = self._credit_ring()
        (d,) = analyze_program(f, passes=("cdg",))
        ce = synthesize_counterexample(f, d.data)
        err = confirm_counterexample(ce, engine=engine)
        assert isinstance(err, FabricDeadlockError)
        msg = str(err)
        assert "credit" in msg
        assert "ch7" in msg  # the contract's CDG cycle, named in the error
        assert ce.cycle > 0  # it genuinely ran before wedging

    def test_counterexample_contract_records_cycle(self):
        from repro.wse.analyze import synthesize_counterexample

        f = self._credit_ring()
        (d,) = analyze_program(f, passes=("cdg",))
        ce = synthesize_counterexample(f, d.data)
        assert ce.static_contract is not None
        assert len(ce.static_contract.cdg_cycles) == 1

    def test_shipped_programs_cdg_clean(self):
        from repro.wse.analyze.lint import shipped_programs
        from repro.wse.analyze import cdg_pass

        for name, fabric in shipped_programs():
            assert not cdg_pass(fabric), name


# ----------------------------------------------------------------------
# Pass 8: static contracts (and their dynamic verification)
# ----------------------------------------------------------------------
class TestContractDefects:
    def _off_by_one_program(self):
        """A runnable 2-tile stream whose declarations are internally
        consistent but off by one versus the actual program: declared 5
        words on channel 5, the instructions move 4.  Static-only passes
        cannot see this; holding the contract against the engine can."""
        from repro.wse.dsr import FabricRx, FabricTx, Instruction, MemCursor

        f = _fabric_with_cores(2, 1)
        a, b = f.core(0, 0), f.core(1, 0)
        f.router(0, 0).set_route(5, Port.CORE, (Port.EAST,))
        f.router(1, 0).set_route(5, Port.WEST, (Port.CORE,))
        src = a.memory.store("src", np.arange(4, dtype=np.float16))
        dst = b.memory.alloc("dst", 5, np.float16)
        q = b.subscribe(5)
        a.launch(Instruction(
            op="copy", dst=FabricTx(a, 4, 5, name="tx"),
            srcs=[MemCursor(src, 0, 4, name="src")], length=4, name="send",
        ), thread=0)
        rx = Instruction(
            op="copy", dst=MemCursor(dst, 0, 4, name="dst"),
            srcs=[FabricRx(q, 4, 5, name="rx")], length=4, name="recv",
        )
        b.launch(rx, thread=0)
        a.program_decl.launched(InstrDecl(
            "copy", FabricRef(5, 5), (MemRef("src", 0, 4),),
            length=4, thread=0, name="send",
        ))
        b.program_decl.launched(InstrDecl(
            "copy", MemRef("dst", 0, 5), (FabricRef(5, 5),),
            length=4, thread=0, name="recv",
        ))
        return f, rx

    def test_off_by_one_declared_words_fails_verification(self):
        from repro.obs import ObsSession
        from repro.wse.analyze import compute_contract
        from repro.wse.analyze.verify_contracts import _check_fabric

        f, rx = self._off_by_one_program()
        contract = compute_contract(f)
        assert contract.total_words == 10  # the (wrong) declared 5 x 2 routers
        session = ObsSession()
        session.observe_fabric("seeded", f)
        f.run(max_cycles=1_000)
        assert rx.finished
        check = _check_fabric(
            "seeded-off-by-one", f, contract, session, "seeded",
            runs=1, observed_cycles=f.cycle,
            bound=contract.cycle_lower_bound,
        )
        assert not check.words_ok
        assert check.observed_words == 8  # what the engine actually moved
        assert len(check.router_mismatches) == 2  # both routers named
        assert not check.ok and "FAIL" in check.summary()

    def test_correct_declaration_verifies_exactly(self):
        """The same program with honest declarations passes: exact
        per-router agreement, registry agreement, bound satisfied."""
        from repro.obs import ObsSession
        from repro.wse.analyze import compute_contract
        from repro.wse.analyze.verify_contracts import _check_fabric
        from repro.wse.dsr import FabricRx, FabricTx, Instruction, MemCursor

        f = _fabric_with_cores(2, 1)
        a, b = f.core(0, 0), f.core(1, 0)
        f.router(0, 0).set_route(5, Port.CORE, (Port.EAST,))
        f.router(1, 0).set_route(5, Port.WEST, (Port.CORE,))
        src = a.memory.store("src", np.arange(4, dtype=np.float16))
        dst = b.memory.alloc("dst", 4, np.float16)
        q = b.subscribe(5)
        a.launch(Instruction(
            op="copy", dst=FabricTx(a, 4, 5, name="tx"),
            srcs=[MemCursor(src, 0, 4, name="src")], length=4, name="send",
        ), thread=0)
        b.launch(Instruction(
            op="copy", dst=MemCursor(dst, 0, 4, name="dst"),
            srcs=[FabricRx(q, 4, 5, name="rx")], length=4, name="recv",
        ), thread=0)
        a.program_decl.launched(InstrDecl(
            "copy", FabricRef(5, 4), (MemRef("src", 0, 4),),
            length=4, thread=0, name="send",
        ))
        b.program_decl.launched(InstrDecl(
            "copy", MemRef("dst", 0, 4), (FabricRef(5, 4),),
            length=4, thread=0, name="recv",
        ))
        contract = compute_contract(f)
        session = ObsSession()
        session.observe_fabric("ok", f)
        f.run(max_cycles=1_000)
        check = _check_fabric(
            "honest", f, contract, session, "ok", runs=1,
            observed_cycles=f.cycle, bound=contract.cycle_lower_bound,
        )
        assert check.ok, check.summary()
        assert check.slack >= 0

    def test_shipped_programs_carry_contracts(self):
        from repro.wse.analyze.lint import shipped_programs

        for name, fabric in shipped_programs():
            contract = fabric.static_contract
            assert contract is not None, name
            assert not contract.cdg_cycles, name
            assert contract.cycle_lower_bound > 0, name
