"""Tests for the CS-1 performance model: the paper's headline numbers."""

import dataclasses

import numpy as np
import pytest

from repro.perfmodel import HEADLINE_MESH, WaferPerfModel
from repro.perfmodel.wafer import (
    FLOPS_PER_POINT_PER_ITERATION,
    STORAGE_WORDS_PER_POINT,
)


@pytest.fixture(scope="module")
def model():
    return WaferPerfModel()


class TestHeadlineNumbers:
    def test_iteration_time_28_1_us(self, model):
        """Paper section V: mean 28.1 us between iterations."""
        t = model.iteration_time(HEADLINE_MESH)
        assert t == pytest.approx(28.1e-6, rel=0.01)

    def test_0_86_pflops(self, model):
        """Paper abstract/section V: 0.86 PFLOPS achieved."""
        assert model.pflops(HEADLINE_MESH) == pytest.approx(0.86, rel=0.01)

    def test_one_third_of_peak(self, model):
        """Paper abstract: 'about one third of the machine's peak'."""
        frac = model.fraction_of_peak(HEADLINE_MESH)
        assert 0.28 < frac < 0.37

    def test_44_flops_per_point(self, model):
        assert FLOPS_PER_POINT_PER_ITERATION == 44
        nx, ny, nz = HEADLINE_MESH
        assert model.flops_per_iteration(HEADLINE_MESH) == 44 * nx * ny * nz

    def test_storage_31kb_at_z1536(self, model):
        """Paper section IV: 'about 31KB out of 48KB'."""
        b = model.storage_bytes_per_tile(1536)
        assert b == 10 * 1536 * 2 == 30720
        assert b < 48 * 1024

    def test_max_z(self, model):
        assert model.max_z() == 48 * 1024 // (2 * STORAGE_WORDS_PER_POINT)
        assert model.max_z() >= 1536

    def test_gflops_per_watt(self, model):
        """0.86 PFLOPS at 20 kW = 43 GF/W — 'beyond what has been
        reported for conventional machines on comparable problems'."""
        g = model.gflops_per_watt(HEADLINE_MESH)
        assert g == pytest.approx(0.86e6 / 20_000, rel=0.02)
        assert g > 20  # HPCG-class CPU systems are well under 1 GF/W


class TestCalibration:
    def test_calibrate_recovers_default_overhead(self):
        cal = WaferPerfModel.calibrate()
        assert cal.compute_overhead == pytest.approx(1.37, abs=0.02)

    def test_calibrated_model_reproduces_measurement(self):
        cal = WaferPerfModel.calibrate(measured_seconds=30e-6)
        assert cal.iteration_time(HEADLINE_MESH) == pytest.approx(30e-6, rel=1e-6)

    def test_impossible_measurement_rejected(self):
        with pytest.raises(ValueError, match="AllReduce floor"):
            WaferPerfModel.calibrate(measured_seconds=1e-9)


class TestBreakdown:
    def test_components_sum(self, model):
        bd = model.iteration_breakdown(HEADLINE_MESH)
        assert bd.compute_cycles == pytest.approx(
            bd.spmv_cycles + bd.dot_compute_cycles + bd.axpy_cycles
        )
        assert bd.total_cycles == pytest.approx(
            bd.compute_cycles * bd.overhead_factor + bd.allreduce_cycles
        )

    def test_spmv_dominates_compute(self, model):
        """2 SpMVs at 12 ops/point dwarf 6 AXPYs at 2 ops/point."""
        bd = model.iteration_breakdown(HEADLINE_MESH)
        assert bd.spmv_cycles > bd.dot_compute_cycles > bd.axpy_cycles

    def test_allreduce_share_grows_as_z_shrinks(self, model):
        """Short columns are collective-latency-bound — the shape effect
        the paper's model predicts."""
        bd_long = model.iteration_breakdown((600, 595, 1536))
        bd_short = model.iteration_breakdown((600, 595, 64))
        share_long = bd_long.allreduce_cycles / bd_long.total_cycles
        share_short = bd_short.allreduce_cycles / bd_short.total_cycles
        assert share_short > share_long

    def test_pflops_increase_with_z(self, model):
        """Amortizing the AllReduce: deeper columns => higher efficiency."""
        assert model.pflops((600, 595, 1536)) > model.pflops((600, 595, 256))


class TestSweeps:
    def test_sweep_records(self, model):
        recs = model.sweep_mesh_shape([(100, 100, 256), (600, 595, 1536)])
        assert len(recs) == 2
        assert recs[1]["pflops"] > recs[0]["pflops"]
        for r in recs:
            assert set(r) >= {"mesh", "time_us", "pflops", "fraction_of_peak"}

    def test_smaller_fabric_footprint_lower_pflops(self, model):
        """Fewer tiles in use => fewer flops in the same time."""
        assert model.pflops((300, 300, 1536)) < model.pflops((600, 595, 1536))

    def test_infeasible_mesh_rejected_in_sweep(self, model):
        with pytest.raises(ValueError):
            model.sweep_mesh_shape([(1000, 1000, 64)])


class TestModelVsDiscreteSimulation:
    def test_spmv_cycle_envelope(self, model):
        """The DES (optimistic: all threads advance each cycle) must fall
        between the fabric-limited lower bound (~Z) and the calibrated
        model's per-SpMV budget (3Z x overhead)."""
        from repro.kernels import run_spmv_des
        from repro.problems import Stencil7

        z = 48
        op = Stencil7.from_random((3, 3, z), rng=np.random.default_rng(3))
        pre, _, _ = op.jacobi_precondition()
        _, cycles = run_spmv_des(pre, 0.1 * np.random.default_rng(4).standard_normal(pre.shape))
        lower = z
        upper = model.compute_overhead * 3 * z + 40
        assert lower <= cycles <= upper


class TestPrecisionVariants:
    """The abstract's 'memory capacity and floating point precision'."""

    def test_fp32_halves_capacity(self, model):
        assert model.max_z_for_precision("single") == model.max_z_for_precision("mixed") // 2
        assert model.max_z_for_precision("double") == model.max_z_for_precision("mixed") // 4

    def test_mixed_matches_baseline(self, model):
        assert model.iteration_time_for_precision(
            HEADLINE_MESH, "mixed"
        ) == pytest.approx(model.iteration_time(HEADLINE_MESH))

    def test_fp32_slower_per_z(self, model):
        mesh = (600, 595, 1024)
        t16 = model.iteration_time_for_precision(mesh, "mixed")
        t32 = model.iteration_time_for_precision(mesh, "single")
        assert t32 > 1.5 * t16

    def test_oversized_z_rejected_per_precision(self, model):
        with pytest.raises(ValueError, match="exceeds tile memory"):
            model.iteration_time_for_precision((600, 595, 1536), "single")

    def test_half_charged_as_mixed(self, model):
        mesh = (600, 595, 512)
        assert model.iteration_time_for_precision(
            mesh, "half"
        ) == pytest.approx(model.iteration_time_for_precision(mesh, "mixed"))
