"""Smoke tests: the examples must run end to end.

The quick examples run in-process; the slower ones are imported and
lightly exercised so a broken import or renamed API fails fast without
spending a minute of CFD per test run.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _load(name: str):
    path = EXAMPLES / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    mod = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = mod
    spec.loader.exec_module(mod)
    return mod


class TestExamplesExist:
    def test_all_examples_present(self):
        names = {p.stem for p in EXAMPLES.glob("*.py")}
        assert {
            "quickstart", "cavity_flow", "precision_study",
            "scaling_comparison", "wafer_kernels_tour",
            "transient_cavity", "capacity_planning", "cavity3d",
            "hpcg_context",
        } <= names

    def test_every_example_has_main_and_docstring(self):
        for path in EXAMPLES.glob("*.py"):
            source = path.read_text()
            assert '"""' in source.partition("\n")[0] + source, path.name
            assert "def main()" in source, path.name
            assert '__name__ == "__main__"' in source, path.name


class TestFastExamplesRun:
    def test_wafer_kernels_tour(self, capsys):
        _load("wafer_kernels_tour").main()
        out = capsys.readouterr().out
        assert "SpMV dataflow" in out
        assert "AllReduce" in out
        assert "tessellation" in out.lower()

    def test_capacity_planning(self, capsys):
        _load("capacity_planning").main()
        out = capsys.readouterr().out
        assert "roadmap" in out
        assert "sufficient bandwidth" in out.lower()

    def test_cavity3d(self, capsys):
        _load("cavity3d").main()
        out = capsys.readouterr().out
        assert "SIMPLE-3D" in out
        assert "wafer solve" in out

    def test_quickstart(self, capsys):
        _load("quickstart").main()
        out = capsys.readouterr().out
        assert "28.1" in out
        assert "converged" in out
