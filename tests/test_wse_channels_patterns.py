"""Tests for the Fig. 5 tessellation colouring and the Fig. 6b pattern
combinators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.wse import (
    N_SPMV_CHANNELS,
    channel_map,
    tile_channel,
    verify_tessellation,
)
from repro.wse.patterns import (
    Pattern,
    hflip,
    hrep,
    hstack,
    merge,
    rot180,
    single,
    vflip,
    vrep,
    vstack,
)


class TestTessellation:
    def test_five_channels(self):
        colors = channel_map(20, 20)
        assert set(np.unique(colors)) == set(range(N_SPMV_CHANNELS))

    def test_paper_property_on_cs1_sized_patch(self):
        verify_tessellation(channel_map(64, 64))

    def test_tile_channel_matches_map(self):
        cm = channel_map(10, 7)
        for y in range(7):
            for x in range(10):
                assert cm[y, x] == tile_channel(x, y)

    @given(st.integers(1, 40), st.integers(1, 40))
    @settings(max_examples=40, deadline=None)
    def test_property_any_size(self, w, h):
        verify_tessellation(channel_map(w, h))

    def test_violation_detected(self):
        bad = np.zeros((3, 3), dtype=int)  # all one colour
        with pytest.raises(AssertionError):
            verify_tessellation(bad)

    def test_neighbour_colors_are_pm1_pm2(self):
        """The incoming colours at any tile are c+-1, c+-2 mod 5."""
        c = tile_channel(7, 9)
        neigh = {
            tile_channel(8, 9), tile_channel(6, 9),
            tile_channel(7, 10), tile_channel(7, 8),
        }
        assert neigh == {(c + 1) % 5, (c - 1) % 5, (c + 2) % 5, (c - 2) % 5}


class TestPatternCombinators:
    def test_single_shape(self):
        p = single({(0, "C"): ("E",)})
        assert (p.width, p.height) == (1, 1)

    def test_hstack_and_hrep(self):
        p = hrep(single({(0, "C"): ("E",)}), 3)
        assert (p.width, p.height) == (3, 1)
        assert p.at(2, 0) == {(0, "C"): ("E",)}

    def test_vstack_and_vrep(self):
        p = vrep(single({(0, "C"): ("N",)}), 4)
        assert (p.width, p.height) == (1, 4)

    def test_stack_shape_mismatch(self):
        with pytest.raises(ValueError):
            hstack(single({}), vrep(single({}), 2))
        with pytest.raises(ValueError):
            vstack(single({}), hrep(single({}), 2))

    def test_hflip_swaps_ew(self):
        p = hstack(single({(0, "W"): ("E",)}), single({(0, "C"): ("W", "N")}))
        q = hflip(p)
        assert q.at(0, 0) == {(0, "C"): ("E", "N")}
        assert q.at(1, 0) == {(0, "E"): ("W",)}

    def test_vflip_swaps_ns(self):
        p = vstack(single({(0, "S"): ("N",)}), single({(0, "C"): ("S",)}))
        q = vflip(p)
        assert q.at(0, 0) == {(0, "C"): ("N",)}
        assert q.at(0, 1) == {(0, "N"): ("S",)}

    def test_flips_are_involutions(self):
        p = hstack(single({(1, "W"): ("E", "C")}), single({(2, "N"): ("S",)}))
        assert hflip(hflip(p)).tiles == p.tiles
        assert vflip(vflip(p)).tiles == p.tiles
        assert rot180(rot180(p)).tiles == p.tiles

    def test_merge_disjoint(self):
        a = single({(0, "C"): ("E",)})
        b = single({(1, "C"): ("N",)})
        m = merge(a, b)
        assert m.at(0, 0) == {(0, "C"): ("E",), (1, "C"): ("N",)}

    def test_merge_conflict_rejected(self):
        a = single({(0, "C"): ("E",)})
        b = single({(0, "C"): ("N",)})
        with pytest.raises(ValueError, match="conflicting"):
            merge(a, b)

    def test_merge_identical_route_allowed(self):
        a = single({(0, "C"): ("E",)})
        m = merge(a, a)
        assert m.at(0, 0) == {(0, "C"): ("E",)}

    def test_merge_shape_mismatch(self):
        with pytest.raises(ValueError):
            merge(single({}), hrep(single({}), 2))

    def test_zero_rep(self):
        assert hrep(single({}), 0).width == 0
        assert vrep(single({}), 0).height == 0

    def test_negative_rep_rejected(self):
        with pytest.raises(ValueError):
            hrep(single({}), -1)

    def test_compile_shape_mismatch(self):
        from repro.wse import Fabric
        from repro.wse.patterns import compile_to_fabric

        with pytest.raises(ValueError, match="does not match"):
            compile_to_fabric(single({}), Fabric(2, 2))
