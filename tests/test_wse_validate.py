"""Tests for the static routing validator."""

import numpy as np
import pytest

from repro.wse import Fabric, Port
from repro.wse.allreduce import allreduce_pattern
from repro.wse.patterns import compile_to_fabric
from repro.wse.validate import check_routing, validate_routing


class _Core:
    def deliver(self, channel, value):
        pass

    def poll_tx(self, channel):
        return None

    def tx_channels(self):
        return []


def _fabric_with_cores(w, h):
    f = Fabric(w, h)
    for y in range(h):
        for x in range(w):
            f.attach_core(x, y, _Core())
    return f


class TestValidate:
    def test_clean_line_route(self):
        f = _fabric_with_cores(3, 1)
        f.router(0, 0).set_route(0, Port.CORE, (Port.EAST,))
        f.router(1, 0).set_route(0, Port.WEST, (Port.EAST,))
        f.router(2, 0).set_route(0, Port.WEST, (Port.CORE,))
        assert validate_routing(f) == []
        check_routing(f)  # must not raise

    def test_dead_end_detected(self):
        f = _fabric_with_cores(3, 1)
        f.router(0, 0).set_route(0, Port.CORE, (Port.EAST,))
        # no continuation at (1,0)
        issues = validate_routing(f)
        assert any(i.kind == "dead-end" for i in issues)
        with pytest.raises(ValueError, match="dead-end"):
            check_routing(f)

    def test_off_fabric_detected(self):
        f = _fabric_with_cores(2, 1)
        f.router(0, 0).set_route(0, Port.CORE, (Port.WEST,))
        issues = validate_routing(f)
        assert any(i.kind == "off-fabric" for i in issues)

    def test_missing_core_detected(self):
        f = Fabric(2, 1)  # no cores attached
        f.router(0, 0).set_route(0, Port.CORE, (Port.EAST,))
        f.router(1, 0).set_route(0, Port.WEST, (Port.CORE,))
        issues = validate_routing(f)
        assert any(i.kind == "missing-core" for i in issues)

    def test_cycle_detected(self):
        f = _fabric_with_cores(2, 2)
        # A ring: (0,0) -> E -> (1,0) -> N -> (1,1) -> W -> (0,1) -> S -> (0,0).
        # A word sent south arrives on the receiver's NORTH port, etc.
        f.router(0, 0).set_route(0, Port.NORTH, (Port.EAST,))
        f.router(0, 0).set_route(0, Port.CORE, (Port.EAST,))
        f.router(1, 0).set_route(0, Port.WEST, (Port.NORTH,))
        f.router(1, 1).set_route(0, Port.SOUTH, (Port.WEST,))
        f.router(0, 1).set_route(0, Port.EAST, (Port.SOUTH,))
        issues = validate_routing(f)
        assert any(i.kind == "cycle" for i in issues)

    def test_fanout_with_core_exit_is_not_a_cycle(self):
        """A path that delivers to cores along the way and terminates is
        clean even with fanout."""
        f = _fabric_with_cores(3, 1)
        f.router(1, 0).set_route(7, Port.CORE, (Port.EAST, Port.WEST, Port.CORE))
        f.router(0, 0).set_route(7, Port.EAST, (Port.CORE,))
        f.router(2, 0).set_route(7, Port.WEST, (Port.CORE,))
        assert validate_routing(f) == []

    @pytest.mark.parametrize("w,h", [(4, 4), (8, 8), (5, 7)])
    def test_allreduce_pattern_validates_clean(self, w, h):
        """The Fig. 6 construction must pass static validation."""
        f = _fabric_with_cores(w, h)
        compile_to_fabric(allreduce_pattern(w, h), f)
        assert validate_routing(f) == []

    def test_spmv_fabric_validates_clean(self):
        """The Listing 1 program's routes must pass static validation."""
        from repro.kernels import build_spmv_fabric
        from repro.problems import Stencil7

        op = Stencil7.identity((4, 4, 4))
        fabric, _ = build_spmv_fabric(op, np.zeros(op.shape))
        assert validate_routing(fabric) == []

    def test_empty_fabric_clean(self):
        assert validate_routing(Fabric(3, 3)) == []


class TestRoutingIssueValues:
    def test_value_equality(self):
        """RoutingIssue is a frozen dataclass — assert on values, not reprs."""
        from repro.wse.validate import RoutingIssue

        f = _fabric_with_cores(3, 1)
        f.router(0, 0).set_route(0, Port.CORE, (Port.EAST,))
        issues = validate_routing(f)
        assert issues == [RoutingIssue(
            "dead-end", 0, (1, 0),
            "words arriving on port W (sent from (0, 0) via E) have no route",
        )]

    def test_frozen(self):
        import pytest as _pytest

        from repro.wse.validate import RoutingIssue

        issue = RoutingIssue("dead-end", 0, (1, 0), "detail")
        with _pytest.raises(AttributeError):
            issue.kind = "cycle"

    def test_every_distinct_loop_reported(self):
        """Two disjoint forwarding rings on one channel: two findings."""
        f = _fabric_with_cores(4, 1)
        f.router(0, 0).set_route(0, Port.EAST, (Port.EAST,))
        f.router(1, 0).set_route(0, Port.WEST, (Port.WEST,))
        f.router(2, 0).set_route(0, Port.EAST, (Port.EAST,))
        f.router(3, 0).set_route(0, Port.WEST, (Port.WEST,))
        issues = [i for i in validate_routing(f) if i.kind == "cycle"]
        assert len(issues) == 2
        assert sorted(i.where for i in issues) == [(0, 0), (2, 0)]
