"""Tests for the report harness (write-report)."""

from repro.analysis.harness import collect_reports, write_report
from repro.analysis.reports import REPORTS
from repro.cli import main


class TestCollect:
    def test_subset(self):
        out = collect_reports(names={"fig5", "spmv2d"})
        assert set(out) == {"fig5", "spmv2d"}
        assert "mod 5" in out["fig5"]

    def test_no_errors_in_fast_subset(self):
        fast = {"fig5", "spmv2d", "cfd", "sweep", "ablation", "roofline",
                "multiwafer", "energy", "capacity", "fig1"}
        out = collect_reports(names=fast)
        assert not any(text.startswith("ERROR") for text in out.values())


class TestWriteReport:
    def test_writes_markdown(self, tmp_path):
        p = write_report(tmp_path / "r.md", names={"fig5", "energy"})
        text = p.read_text()
        assert text.startswith("# Regenerated experiment reports")
        assert "## fig5" in text and "## energy" in text
        assert "```text" in text

    def test_cli_write_report(self, tmp_path, capsys):
        out = tmp_path / "cli.md"
        # Patch the registry down to a fast subset for the CLI test.
        import repro.analysis.harness as harness

        orig = dict(REPORTS)
        try:
            REPORTS.clear()
            REPORTS["fig5"] = orig["fig5"]
            assert main(["write-report", "--output", str(out)]) == 0
        finally:
            REPORTS.clear()
            REPORTS.update(orig)
        assert out.exists()
        assert "fig5" in out.read_text()
