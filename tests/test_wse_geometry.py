"""Tests for the wafer geometry and machine configuration."""

import pytest

from repro.wse import CS1, CS1_GEOMETRY, MachineConfig, WaferGeometry


class TestGeometry:
    def test_cs1_die_grid(self):
        """Paper: 'a 7x12 array of 84 identical die'."""
        assert CS1_GEOMETRY.die_cols * CS1_GEOMETRY.die_rows == 84

    def test_cs1_tile_count_near_380k(self):
        """Paper: 'The system comprises 380,000 processor cores'."""
        assert 375_000 <= CS1_GEOMETRY.total_tiles <= 390_000

    def test_fabric_matches_experiment(self):
        """Paper section V: 'a 602 x 595 compute fabric'."""
        assert CS1_GEOMETRY.fabric_width == 602
        assert CS1_GEOMETRY.fabric_height == 595

    def test_fabric_fits_wafer(self):
        assert CS1_GEOMETRY.fabric_width <= CS1_GEOMETRY.total_width
        assert CS1_GEOMETRY.fabric_height <= CS1_GEOMETRY.total_height

    def test_oversized_fabric_rejected(self):
        with pytest.raises(ValueError):
            WaferGeometry(fabric_width=10_000)

    def test_die_of(self):
        g = CS1_GEOMETRY
        assert g.die_of(0, 0) == (0, 0)
        assert g.die_of(g.die_width, 0) == (1, 0)
        assert g.die_of(0, g.die_height) == (0, 1)

    def test_die_of_out_of_range(self):
        with pytest.raises(IndexError):
            CS1_GEOMETRY.die_of(-1, 0)

    def test_scribe_line_detection(self):
        g = CS1_GEOMETRY
        w = g.die_width
        assert g.crosses_scribe_line(w - 1, 0, w, 0)
        assert not g.crosses_scribe_line(0, 0, 1, 0)

    def test_scribe_line_requires_adjacency(self):
        with pytest.raises(ValueError):
            CS1_GEOMETRY.crosses_scribe_line(0, 0, 2, 0)

    def test_diameter(self):
        assert CS1_GEOMETRY.diameter == 601 + 594

    def test_hop_distance(self):
        assert CS1_GEOMETRY.hop_distance((0, 0), (3, 4)) == 7


class TestMachineConfig:
    def test_memory_totals_18gb(self):
        """Paper: 'There are 18 GB of on-wafer memory'."""
        assert CS1.total_memory_bytes == pytest.approx(18e9, rel=0.05)

    def test_per_tile_memory(self):
        assert CS1.memory_per_tile == 48 * 1024

    def test_peak_is_order_petaflops(self):
        """0.86 PFLOPS achieved should be ~1/3 of fp16 peak."""
        assert 2.0 < CS1.peak_pflops_fp16 < 3.5
        assert 0.28 < 0.86 / CS1.peak_pflops_fp16 < 0.38

    def test_mixed_peak_half_of_fp16_peak(self):
        assert CS1.peak_pflops_mixed == pytest.approx(
            CS1.peak_pflops_fp16 / 2.0
        )

    def test_cycles_to_seconds(self):
        assert CS1.cycles_to_seconds(CS1.clock_hz) == pytest.approx(1.0)

    def test_bandwidth_ratios(self):
        """Memory moves 3 B/flop; injection is 1/4 of peak flops in
        bytes (paper sections I-II)."""
        mem = CS1.memory_read_bytes_per_cycle + CS1.memory_write_bytes_per_cycle
        assert mem / CS1.peak_fp16_flops_per_cycle == pytest.approx(3.0)
        inj_words = CS1.fabric_injection_bytes_per_cycle / 2  # fp16 words
        assert inj_words / CS1.peak_fp16_flops_per_cycle == pytest.approx(1.0)
