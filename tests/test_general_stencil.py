"""Tests for the general N-point stencil operator and the 27-point case."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.problems.general import (
    StencilOperator,
    laplacian27,
    max_z_for_stencil,
    wafer_words_per_point,
)
from repro.problems import Stencil7, poisson7
from repro.solver import bicgstab, cg

RNG = np.random.default_rng(97)


class TestStencilOperator:
    def test_matches_stencil7(self):
        """The general operator must reproduce the specialized one."""
        s7 = Stencil7.from_random((4, 4, 5), rng=RNG)
        from repro.problems.stencil7 import OFFSETS_7PT

        gen = StencilOperator(
            {off: s7.coeffs[name] for name, off in OFFSETS_7PT.items()},
            shape=s7.shape,
        )
        v = RNG.standard_normal(s7.shape)
        np.testing.assert_allclose(gen.apply(v), s7.apply(v), rtol=1e-13)

    def test_apply_vs_csr(self):
        op = laplacian27((4, 4, 4))
        v = RNG.standard_normal((4, 4, 4))
        np.testing.assert_allclose(
            op.apply(v), (op.to_csr() @ v.ravel()).reshape(op.shape),
            rtol=1e-12, atol=1e-12,
        )

    def test_default_diagonal_is_identity(self):
        op = StencilOperator({(1, 0, 0): np.zeros((3, 3, 3))})
        assert op.has_unit_diagonal
        v = RNG.standard_normal((3, 3, 3))
        np.testing.assert_array_equal(op.apply(v), v)

    def test_validate_boundary(self):
        c = np.ones((3, 3, 3))
        op = StencilOperator({(2, 0, 0): c})
        with pytest.raises(ValueError, match="boundary"):
            op.validate()

    def test_offset_dim_mismatch(self):
        with pytest.raises(ValueError, match="axes"):
            StencilOperator({(1, 0): np.zeros((3, 3, 3))})

    def test_jacobi(self):
        op = laplacian27((4, 4, 4))
        x = RNG.standard_normal((4, 4, 4))
        b = op.apply(x)
        pre, bp, _ = op.jacobi_precondition(b)
        assert pre.has_unit_diagonal
        np.testing.assert_allclose(pre.apply(x), bp, rtol=1e-12)

    def test_long_range_offsets(self):
        """Fourth-order-style +-2 offsets work."""
        shape = (6, 1, 1)
        c = np.zeros(shape)
        c[:-2] = 1.0
        op = StencilOperator({(2, 0, 0): c}, shape=shape)
        v = np.arange(6, dtype=float).reshape(shape)
        u = op.apply(v)
        np.testing.assert_allclose(u.ravel()[:4], v.ravel()[:4] + v.ravel()[2:])

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_random_offsets_vs_csr(self, seed):
        rng = np.random.default_rng(seed)
        shape = (4, 4, 4)
        offsets = [(1, 1, 0), (-1, 0, 1), (0, -1, -1), (1, 0, 0)]
        coeffs = {}
        for off in offsets:
            c = rng.standard_normal(shape)
            for axis, d in enumerate(off):
                sl = [slice(None)] * 3
                if d > 0:
                    sl[axis] = slice(-d, None)
                elif d < 0:
                    sl[axis] = slice(None, -d)
                else:
                    continue
                c[tuple(sl)] = 0.0
            coeffs[off] = c
        op = StencilOperator(coeffs, shape=shape)
        op.validate()
        v = rng.standard_normal(shape)
        np.testing.assert_allclose(
            op.apply(v), (op.to_csr() @ v.ravel()).reshape(shape),
            rtol=1e-11, atol=1e-11,
        )


class TestLaplacian27:
    def test_spd(self):
        A = laplacian27((4, 4, 4)).to_csr().toarray()
        np.testing.assert_allclose(A, A.T, atol=1e-12)
        assert np.all(np.linalg.eigvalsh(A) > 0)

    def test_27_points(self):
        assert laplacian27((4, 4, 4)).n_points == 27

    def test_interior_row_sums_zero(self):
        op = laplacian27((5, 5, 5))
        rowsum = np.asarray(op.to_csr().sum(axis=1)).reshape(op.shape)
        assert abs(rowsum[2, 2, 2]) < 1e-12

    def test_cg_solves_it(self):
        op = laplacian27((5, 5, 5))
        b = RNG.standard_normal(op.shape)
        res = cg(op, b, rtol=1e-10, maxiter=500)
        assert res.converged

    def test_bicgstab_solves_it_preconditioned_mixed(self):
        op = laplacian27((5, 5, 5))
        b = RNG.standard_normal(op.shape)
        pre, bp, _ = op.jacobi_precondition(b)
        res = bicgstab(pre, bp, precision="mixed", rtol=1e-2, maxiter=120)
        assert res.final_residual < 0.05

    def test_comparable_to_7pt_on_smooth_fields(self):
        """Both Laplacians annihilate constants and agree in sign/order
        on smooth fields."""
        shape = (6, 6, 6)
        op27 = laplacian27(shape)
        op7 = poisson7(shape)
        xs = np.linspace(0, 1, 6)[:, None, None]
        v = np.broadcast_to(np.sin(np.pi * xs), shape).copy()
        u27 = op27.apply(v)
        u7 = op7.apply(v)
        inner = (slice(1, -1),) * 3
        assert np.all(u27[inner] * u7[inner] > 0)


class TestWaferFeasibility:
    def test_7pt_matches_paper_budget(self):
        assert wafer_words_per_point(7) == 10

    def test_27pt_caps_z_lower(self):
        z7 = max_z_for_stencil(7)
        z27 = max_z_for_stencil(27)
        assert z7 == 2457
        assert z27 < z7 / 2
        assert z27 == 48 * 1024 // (2 * 30)

    def test_invalid(self):
        with pytest.raises(ValueError):
            wafer_words_per_point(0)
