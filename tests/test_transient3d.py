"""Tests for the transient form of the 3D SIMPLE solver."""

import numpy as np
import pytest

from repro.cfd import FlowField3D, SimpleSolver3D, StaggeredMesh3D


def _solver(n=8):
    return SimpleSolver3D(StaggeredMesh3D(n, n, n), viscosity=0.02)


class TestTransient3D:
    def test_dt_strengthens_diagonal_all_components(self):
        s = _solver()
        f = FlowField3D(s.mesh)
        for steady_fn in (s._u_system, s._v_system, s._w_system):
            A0, _, _ = steady_fn(f)
            A1, _, _ = steady_fn(f, dt=0.01)
            assert np.all(A1.coeffs["diag"] > A0.coeffs["diag"])

    def test_inertia_couples_to_old_field(self):
        s = _solver()
        f = FlowField3D(s.mesh)
        old = FlowField3D(s.mesh)
        old.u[1:-1] = 0.25
        _, b0, _ = s._u_system(f, dt=0.01, old=f)
        _, b1, _ = s._u_system(f, dt=0.01, old=old)
        a0 = s.mesh.dx * s.mesh.dy * s.mesh.dz / 0.01
        np.testing.assert_allclose(b1 - b0, a0 * 0.25)

    def test_spinup_energy_monotone(self):
        s = _solver(6)
        f = FlowField3D(s.mesh)
        ke = [f.kinetic_energy()]
        for _ in range(8):
            old = f.copy()
            for _ in range(6):  # SIMPLE inner iterations per step
                f, _, _ = s.iterate(f, dt=0.05, old=old)
            ke.append(f.kinetic_energy())
        assert ke[0] == 0.0
        assert all(b >= a - 1e-12 for a, b in zip(ke[:5], ke[1:6]))
        assert ke[-1] > 0

    def test_transient_approaches_steady(self):
        steady = _solver(6).solve(max_outer=120, tol=1e-3)
        s = _solver(6)
        f = FlowField3D(s.mesh)
        for _ in range(25):
            old = f.copy()
            for _ in range(8):
                f, _, _ = s.iterate(f, dt=0.3, old=old)
        su, tu = steady.field.u, f.u
        scale = np.abs(su).max()
        assert np.abs(su - tu).max() / scale < 0.2

    def test_steady_path_unchanged(self):
        """dt=None must reproduce the original steady iterate exactly."""
        s1 = _solver(6)
        s2 = _solver(6)
        f1, c1, _ = s1.iterate(FlowField3D(s1.mesh))
        f2, c2, _ = s2.iterate(FlowField3D(s2.mesh), dt=None)
        np.testing.assert_array_equal(f1.u, f2.u)
        assert c1 == c2
