"""Tests for the section VIII capacity roadmap and application models."""

import pytest

from repro.perfmodel import (
    APPLICATIONS,
    ROADMAP,
    Application,
    TechNode,
    assess_application,
    max_cube_edge,
    max_meshpoints,
)
from repro.perfmodel.capacity import CFD_WORDS_PER_POINT, SOLVER_WORDS_PER_POINT


class TestRoadmap:
    def test_paper_sram_numbers(self):
        """Paper section VIII.B: 18 GB now, 'about 40 GB' at 7 nm,
        '50 GB at 5 nm'."""
        by_nm = {n.process_nm: n for n in ROADMAP}
        assert by_nm[16].sram_gb == pytest.approx(18)
        assert by_nm[7].sram_gb == pytest.approx(40)
        assert by_nm[5].sram_gb == pytest.approx(50)

    def test_capacity_monotone_with_shrink(self):
        caps = [max_meshpoints(n) for n in ROADMAP]
        assert caps == sorted(caps)

    def test_solver_only_capacity_larger(self):
        n = ROADMAP[0]
        assert max_meshpoints(n, SOLVER_WORDS_PER_POINT) > max_meshpoints(
            n, CFD_WORDS_PER_POINT
        )

    def test_cs1_holds_600_cubed_cfd(self):
        """The paper's 600^3 CFD projection must be memory-feasible."""
        assert max_meshpoints(ROADMAP[0]) >= 600**3

    def test_cube_edge_consistent(self):
        n = ROADMAP[0]
        e = max_cube_edge(n)
        assert e**3 <= max_meshpoints(n) < (e + 1) ** 3 * 1.01


class TestApplications:
    def test_all_cited_cases_present(self):
        names = " ".join(a.name for a in APPLICATIONS)
        for key in ("helicopter", "wind-turbine", "carbon-capture", "ship"):
            assert key in names

    def test_all_fit_on_cs1(self):
        """Section VIII.B's point: these compact problems fit the wafer."""
        for app in APPLICATIONS:
            assert assess_application(app).fits, app.name

    def test_helicopter_faster_than_real_time(self):
        """Section VIII.A: ~1 M cells, real-time needed — the CS-1
        achieves it with margin ('first ever system capable of
        faster-than real-time simulation of millions of cells')."""
        heli = next(a for a in APPLICATIONS if "helicopter" in a.name)
        a = assess_application(heli)
        assert a.realtime_factor is not None
        assert a.realtime_factor > 1.0

    def test_uq_campaign_speedup(self):
        """1,505 simulations x 600 s (Xu et al.): the wafer turns the
        ~10-day campaign into hours."""
        uq = next(a for a in APPLICATIONS if "carbon-capture" in a.name)
        a = assess_application(uq)
        assert a.cluster_campaign_seconds == pytest.approx(1505 * 600)
        assert a.speedup is not None and a.speedup > 50

    def test_ship_case_speedup_direction(self):
        ship = next(a for a in APPLICATIONS if "self-propulsion" in a.name)
        a = assess_application(ship)
        assert a.speedup is not None and a.speedup > 100

    def test_wind_turbine_sequential_campaign(self):
        wt = next(a for a in APPLICATIONS if "wind-turbine" in a.name)
        assert wt.sequential
        a = assess_application(wt)
        assert a.campaign_seconds is not None and a.campaign_seconds > 0

    def test_oversized_problem_rejected(self):
        giant = Application(name="giant", citation="-", cells=1e12)
        a = assess_application(giant)
        assert not a.fits
        assert a.campaign_seconds is None

    def test_bigger_node_fits_more(self):
        giant = Application(name="big", citation="-", cells=5e8)
        assert not assess_application(giant, ROADMAP[0]).fits
        assert assess_application(giant, ROADMAP[2]).fits
