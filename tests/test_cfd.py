"""Tests for the SIMPLE CFD substrate (mesh, assembly, cavity physics)."""

import numpy as np
import pytest

from repro.cfd import (
    FlowField,
    OpCounter,
    SimpleSolver,
    StaggeredMesh2D,
    centerline_u,
    lid_driven_cavity,
    pressure_correction_system,
    u_momentum_system,
    v_momentum_system,
)
from repro.cfd.opcounter import CYCLE_COSTS, to_cycles

RNG = np.random.default_rng(61)


class TestMesh:
    def test_spacing(self):
        m = StaggeredMesh2D(10, 20, 1.0, 2.0)
        assert m.dx == pytest.approx(0.1)
        assert m.dy == pytest.approx(0.1)

    def test_shapes(self):
        m = StaggeredMesh2D(8, 6)
        assert m.u_shape == (9, 6)
        assert m.v_shape == (8, 7)
        assert m.u_interior == (7, 6)
        assert m.v_interior == (8, 5)

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            StaggeredMesh2D(2, 8)

    def test_bad_lengths(self):
        with pytest.raises(ValueError):
            StaggeredMesh2D(8, 8, lx=-1.0)


class TestFlowField:
    def test_zero_initial_divergence(self):
        f = FlowField(StaggeredMesh2D(8, 8))
        assert f.continuity_residual() == 0.0

    def test_divergence_of_uniform_gradient(self):
        m = StaggeredMesh2D(4, 4)
        f = FlowField(m)
        f.u[:, :] = np.arange(5)[:, None]  # du/dx = 1/dx... linear in i
        div = f.divergence()
        np.testing.assert_allclose(div, m.dy)  # (u_e - u_w)*dy = 1*dy

    def test_copy_is_deep(self):
        f = FlowField(StaggeredMesh2D(4, 4))
        g = f.copy()
        g.u[0, 0] = 9.0
        assert f.u[0, 0] == 0.0

    def test_shape_validation(self):
        m = StaggeredMesh2D(4, 4)
        with pytest.raises(ValueError):
            FlowField(m, u=np.zeros((3, 3)))

    def test_cell_center_velocity_shapes(self):
        f = FlowField(StaggeredMesh2D(5, 7))
        uc, vc = f.cell_center_velocity()
        assert uc.shape == (5, 7)
        assert vc.shape == (5, 7)


class TestAssembly:
    def _setup(self, n=8):
        m = StaggeredMesh2D(n, n)
        f = FlowField(m)
        f.u[1:-1, :] = 0.1 * RNG.standard_normal(m.u_interior)
        f.v[:, 1:-1] = 0.1 * RNG.standard_normal(m.v_interior)
        return m, f

    def test_u_momentum_diagonally_dominant(self):
        m, f = self._setup()
        A, b, d_u = u_momentum_system(m, f, mu=0.01, u_lid=1.0)
        offsum = sum(np.abs(A.coeffs[n]) for n in ("xp", "xm", "yp", "ym"))
        assert np.all(A.coeffs["diag"] >= offsum - 1e-12)

    def test_u_momentum_valid_stencil(self):
        m, f = self._setup()
        A, _, _ = u_momentum_system(m, f, mu=0.01, u_lid=1.0)
        A.validate()

    def test_v_momentum_valid_stencil(self):
        m, f = self._setup()
        A, _, _ = v_momentum_system(m, f, mu=0.01)
        A.validate()

    def test_lid_enters_u_rhs_top_row(self):
        m, f = self._setup()
        _, b0, _ = u_momentum_system(m, f, mu=0.01, u_lid=0.0)
        _, b1, _ = u_momentum_system(m, f, mu=0.01, u_lid=2.0)
        diff = b1 - b0
        assert np.all(diff[:, -1] > 0)       # lid drag on the top row
        assert np.allclose(diff[:, :-1], 0)  # nowhere else

    def test_d_coefficients_zero_on_boundaries(self):
        m, f = self._setup()
        _, _, d_u = u_momentum_system(m, f, mu=0.01, u_lid=1.0)
        assert np.all(d_u[0, :] == 0) and np.all(d_u[-1, :] == 0)
        _, _, d_v = v_momentum_system(m, f, mu=0.01)
        assert np.all(d_v[:, 0] == 0) and np.all(d_v[:, -1] == 0)

    def test_pressure_system_symmetric_except_pin(self):
        m, f = self._setup()
        _, _, d_u = u_momentum_system(m, f, mu=0.01, u_lid=1.0)
        _, _, d_v = v_momentum_system(m, f, mu=0.01)
        A, b = pressure_correction_system(m, f, d_u, d_v)
        M = A.to_csr().toarray()
        # drop the pinned row/column, the rest must be symmetric
        sub = M[1:, 1:]
        np.testing.assert_allclose(sub, sub.T, atol=1e-12)

    def test_under_relaxation_scales_diagonal(self):
        m, f = self._setup()
        A1, _, _ = u_momentum_system(m, f, mu=0.01, u_lid=1.0, alpha_u=1.0)
        A2, _, _ = u_momentum_system(m, f, mu=0.01, u_lid=1.0, alpha_u=0.5)
        np.testing.assert_allclose(
            A2.coeffs["diag"], 2.0 * A1.coeffs["diag"], rtol=1e-12
        )


class TestCavityPhysics:
    @pytest.fixture(scope="class")
    def solution(self):
        solver = lid_driven_cavity(n=24, reynolds=100.0)
        return solver.solve(max_outer=300, tol=1e-4)

    def test_converges(self, solution):
        assert solution.converged

    def test_mass_conserved(self, solution):
        assert solution.field.continuity_residual() < 1e-3

    def test_lid_drags_top_layer(self, solution):
        """u near the lid follows the lid (positive)."""
        y, u = centerline_u(solution)
        assert u[-1] > 0.5

    def test_return_flow_below(self, solution):
        """Mass conservation forces negative u lower down (the vortex)."""
        y, u = centerline_u(solution)
        assert u.min() < -0.05

    def test_qualitative_ghia_agreement(self, solution):
        """First-order upwind on a 24^2 mesh is diffusive; agreement with
        Ghia Re=100 is directional: correct sign and magnitude within a
        factor ~2 at mid-height."""
        y, u = centerline_u(solution)
        mid = u[len(u) // 2]
        assert -0.35 < mid < -0.08  # Ghia: -0.206

    def test_no_flow_through_walls(self, solution):
        f = solution.field
        assert np.all(f.u[0, :] == 0) and np.all(f.u[-1, :] == 0)
        assert np.all(f.v[:, 0] == 0) and np.all(f.v[:, -1] == 0)

    def test_residual_history_decreases(self, solution):
        r = solution.continuity_residuals
        assert r[-1] < r[0]

    def test_summary(self, solution):
        assert "SIMPLE converged" in solution.summary()


class TestSimpleConfig:
    def test_paper_solver_budgets(self):
        s = lid_driven_cavity()
        assert s.momentum_iters == 5
        assert s.continuity_iters == 20

    def test_invalid_reynolds(self):
        with pytest.raises(ValueError):
            lid_driven_cavity(reynolds=-5)

    def test_higher_reynolds_converges_slower_or_equal(self):
        r_lo = lid_driven_cavity(n=12, reynolds=10).solve(max_outer=250, tol=1e-4)
        r_hi = lid_driven_cavity(n=12, reynolds=400).solve(max_outer=250, tol=1e-4)
        assert r_lo.converged
        assert r_lo.iterations <= r_hi.iterations or not r_hi.converged


class TestOpCounterIntegration:
    def test_counts_collected_per_phase(self):
        solver = lid_driven_cavity(n=8)
        solver.counter = OpCounter(enabled=True)
        f = solver.initialize()
        solver.iterate(f)
        rep = solver.counter.report()
        assert {"Initialization", "Momentum", "Continuity", "Field Update"} <= set(rep)
        assert rep["Momentum"]["cycles"] > rep["Field Update"]["cycles"]

    def test_measured_cycles_within_table2_order(self):
        """Our single-phase incompressible assembly must land at or below
        the paper's (more physics-rich) Table II ranges, same order of
        magnitude."""
        from repro.perfmodel import table2

        solver = lid_driven_cavity(n=8)
        solver.counter = OpCounter(enabled=True)
        solver.iterate(solver.initialize())
        rep = solver.counter.report()
        paper = {p.name: p.printed_total for p in table2()}
        for phase in ("Momentum", "Continuity", "Field Update"):
            measured = rep[phase]["cycles"]
            lo, hi = paper[phase]
            assert measured <= hi * 1.5
            assert measured >= lo * 0.1

    def test_disabled_counter_collects_nothing(self):
        solver = lid_driven_cavity(n=8)
        solver.iterate(solver.initialize())
        assert solver.counter.report() == {}

    def test_cycle_conversion(self):
        assert to_cycles({"sqrt": 1}) == CYCLE_COSTS["sqrt"] == 13.0
        assert to_cycles({"divide": 1}) == 15.5
        assert to_cycles({"flop": 4}) == 1.0

    def test_unknown_category_rejected(self):
        c = OpCounter(enabled=True)
        with pytest.raises(KeyError):
            c.add("Momentum", "teleport", 1)
