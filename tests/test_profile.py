"""Tests for the causal cycle profiler (`repro.obs.profile`) and the
benchmark history ledger (`repro.analysis.bench_history`).

The profiler's contract is *conservation*: every non-busy core cycle is
classified (``busy + wait_rx + wait_credit + idle == stepped`` on every
tile), the extracted critical path partitions the profiled window
exactly, and the slack decomposition against a program's
:class:`StaticContract` sums exactly to ``observed - bound`` — under
the active engine, the reference engine, and the record/replay engine.
"""

import json

import numpy as np
import pytest

from repro.kernels.bicgstab_des import DESBiCGStab
from repro.kernels.spmv3d import SpmvEngine
from repro.obs import (
    CycleProfiler,
    ObsSession,
    STATE_NAMES,
    bottleneck_table,
    slack_table,
    top_bottleneck,
)
from repro.problems import momentum_system
from repro.problems.stencil7 import Stencil7
from repro.wse.allreduce import AllReduceEngine

RNG = np.random.default_rng(11)


def _assert_conserved(prof):
    """Every tile's states sum to the profiler's stepped clock, and the
    critical path partitions the window exactly."""
    taxonomy = prof.taxonomy()
    assert taxonomy, "profiler saw no tiles"
    for coord, states in taxonomy.items():
        assert set(states) == set(STATE_NAMES)
        assert sum(states.values()) == prof.stepped, coord
    path = prof.critical_path()
    assert sum(s["cycles"] for s in path) == prof.stepped
    fpath = prof.critical_path_fabric()
    assert sum(s["cycles"] for s in fpath) == prof.fabric.cycle - prof.cycle0


def _spmv_op(shape=(3, 3, 8)):
    op, _b, _dinv = Stencil7.from_random(
        shape, rng=np.random.default_rng(3)).jacobi_precondition()
    return op


# ----------------------------------------------------------------------
class TestConservation:
    def test_spmv_active(self):
        obs = ObsSession(profile=True)
        eng = SpmvEngine(_spmv_op(), engine="active", obs=obs)
        v = 0.1 * RNG.standard_normal(eng.op.shape)
        eng.run(v)
        eng.run(v)
        _assert_conserved(obs.profiles["spmv"])

    def test_allreduce_active(self):
        eng = AllReduceEngine(5, 3, engine="active")
        obs = ObsSession(profile=True)
        obs.observe_fabric("allreduce", eng.fabric)
        values = np.arange(15, dtype=np.float64).reshape(3, 5)
        eng.reduce(values)
        prof = obs.profiles["allreduce"]
        _assert_conserved(prof)
        # A reduce genuinely waits on upstream partials somewhere.
        assert prof.totals()["wait_rx"] > 0

    def test_reference_engine(self):
        eng = AllReduceEngine(4, 3, engine="reference")
        obs = ObsSession(profile=True)
        obs.observe_fabric("allreduce", eng.fabric)
        eng.reduce(np.ones((3, 4)))
        _assert_conserved(obs.profiles["allreduce"])

    def test_solver_both_fabrics(self):
        sys_ = momentum_system((6, 6, 8), reynolds=50.0, dt=0.02)
        obs = ObsSession(profile=True)
        solver = DESBiCGStab(sys_.operator, obs=obs)
        solver.solve(sys_.b, rtol=5e-3, maxiter=8)
        assert set(obs.profiles) == {"spmv", "allreduce"}
        for prof in obs.profiles.values():
            _assert_conserved(prof)


class TestReplayFold:
    def test_replay_taxonomy_bit_identical_to_live(self):
        op = _spmv_op()
        vs = [0.1 * np.random.default_rng(7).standard_normal(op.shape)
              for _ in range(3)]
        sessions = {}
        for engine in ("active", "replay"):
            obs = ObsSession(profile=True)
            eng = SpmvEngine(op, engine=engine, obs=obs)
            for v in vs:
                eng.run(v)
            sessions[engine] = obs
        live = sessions["active"].profiles["spmv"]
        rep = sessions["replay"].profiles["spmv"]
        _assert_conserved(rep)
        assert rep.stepped == live.stepped
        assert rep.taxonomy() == live.taxonomy()
        assert rep.totals() == live.totals()

    def test_replay_solve_conserves_and_matches(self):
        sys_ = momentum_system((6, 6, 8), reynolds=50.0, dt=0.02)
        results, profs = {}, {}
        for engine in ("active", "replay"):
            obs = ObsSession(profile=True)
            solver = DESBiCGStab(sys_.operator, engine=engine, obs=obs)
            results[engine] = solver.solve(sys_.b, rtol=5e-3, maxiter=8)
            profs[engine] = obs.profiles
        assert np.array_equal(results["active"].x, results["replay"].x)
        for name in ("spmv", "allreduce"):
            _assert_conserved(profs["replay"][name])
            assert (profs["replay"][name].taxonomy()
                    == profs["active"][name].taxonomy())

    def test_foreign_tape_fold_opaque_conserves(self):
        """A profiler attached after recording still conserves: the
        replayed window folds opaquely into each tile's frozen state."""
        op = _spmv_op()
        v = 0.1 * RNG.standard_normal(op.shape)
        eng = SpmvEngine(op, engine="replay")  # records unprofiled
        eng.run(v)
        prof = CycleProfiler("late", eng.fabric).attach()
        eng.run(v)  # replays; profiler folds opaquely
        _assert_conserved(prof)
        prof.detach()


class TestProfilerMechanics:
    def test_attach_detach_restores(self):
        eng = AllReduceEngine(4, 2, engine="active")
        prof = CycleProfiler("ar", eng.fabric).attach()
        assert eng.fabric.profiler is prof
        eng.reduce(np.ones((2, 4)))
        prof.detach()
        assert eng.fabric.profiler is None
        assert eng.fabric.obs is None
        for row in eng.fabric.cores:
            for core in row:
                if core is not None:
                    assert core.profiler is None
        # A second reduce leaves the ledgers untouched.
        before = prof.stepped
        eng.reduce(np.ones((2, 4)))
        assert prof.stepped == before

    def test_double_attach_conflict(self):
        eng = AllReduceEngine(3, 2, engine="active")
        CycleProfiler("a", eng.fabric).attach()
        with pytest.raises(RuntimeError, match="already"):
            CycleProfiler("b", eng.fabric).attach()

    def test_mark_windows_the_run(self):
        eng = AllReduceEngine(4, 3, engine="active")
        obs = ObsSession(profile=True)
        obs.observe_fabric("allreduce", eng.fabric)
        prof = obs.profiles["allreduce"]
        eng.reduce(np.ones((3, 4)))
        mark = prof.mark()
        eng.reduce(np.ones((3, 4)))
        window = prof.stepped - mark.stepped
        assert window > 0
        path = prof.critical_path(mark)
        assert sum(s["cycles"] for s in path) == window
        tax = prof.taxonomy(mark)
        for states in tax.values():
            assert sum(states.values()) == window

    def test_harvest_exposes_counters(self):
        eng = AllReduceEngine(4, 2, engine="active")
        obs = ObsSession(profile=True)
        obs.observe_fabric("allreduce", eng.fabric)
        eng.reduce(np.ones((2, 4)))
        obs.harvest()
        d = obs.metrics.as_dict()
        total = sum(d[f"allreduce.profile.{s}_cycles"]["value"]
                    for s in STATE_NAMES)
        prof = obs.profiles["allreduce"]
        assert total == prof.stepped * len(prof.taxonomy())


class TestSlackAttribution:
    @pytest.mark.parametrize("engine", ["active", "replay"])
    def test_all_programs_slack_sums_exactly(self, engine):
        """Acceptance criterion: for every verify-contracts program the
        profiled slack decomposition sums exactly to observed - bound,
        under both the active and the replay engine."""
        from repro.wse.analyze.verify_contracts import verify_contracts

        checks = verify_contracts(engine, profile=True)
        assert len(checks) == 9
        for c in checks:
            assert c.slack_breakdown, c.program
            assert c.slack_breakdown_ok, c.program
            assert sum(v for _k, v in c.slack_breakdown) == c.slack
            assert c.ok, c.summary()

    def test_breakdown_excluded_from_key(self):
        from repro.wse.analyze.verify_contracts import ContractCheck

        kw = dict(program="p", engine="active", runs=1, expected_words=0,
                  observed_words=0, metrics_words=0, router_mismatches=(),
                  cycle_lower_bound=3, observed_cycles=5, cdg_clean=True)
        plain = ContractCheck(**kw)
        profiled = ContractCheck(
            **kw, slack_breakdown=(("compute_overhang", 2),))
        assert plain.key() == profiled.key()
        assert profiled.slack_breakdown_ok
        bad = ContractCheck(**kw, slack_breakdown=(("idle", 1),))
        assert not bad.slack_breakdown_ok and not bad.ok


class TestReportsAndExports:
    @pytest.fixture(scope="class")
    def profiled_solve(self):
        sys_ = momentum_system((6, 6, 8), reynolds=50.0, dt=0.02)
        obs = ObsSession(profile=True)
        solver = DESBiCGStab(sys_.operator, obs=obs)
        result = solver.solve(sys_.b, rtol=5e-3, maxiter=8)
        obs.harvest()
        return obs, solver, result

    def test_top_bottleneck_names_cause(self, profiled_solve):
        obs, _, _ = profiled_solve
        bn = top_bottleneck(obs)
        assert bn is not None
        assert bn["state"] not in ("busy", "idle_skipped")
        assert bn["fabric"] in ("spmv", "allreduce")
        assert bn["phase"] in ("spmv", "allreduce", "axpy", "dot_local")
        assert bn["cycles"] > 0 and 0 < bn["share"] <= 1

    def test_bottleneck_table_accounts_all_path_cycles(self, profiled_solve):
        obs, solver, _ = profiled_solve
        table = bottleneck_table(obs)
        # Both fabrics tick through every timeline cycle, so the path
        # total is fabrics x timeline.
        expect = len(obs.profiles) * solver.report.total_cycles
        assert f"total{'':<0}" in table and str(expect) in table
        assert "100.0%" in table

    def test_slack_table_sums(self, profiled_solve):
        obs, solver, _ = profiled_solve
        from repro.obs.cli import _contract_bounds

        bounds = _contract_bounds(obs, solver)
        assert set(bounds) == {"spmv", "allreduce"}
        text = slack_table(obs, bounds)
        for name, (bound, observed) in bounds.items():
            assert f"{name}: observed {observed} cycles vs bound {bound}" in text
            comp = obs.profiles[name].slack_attribution(
                bound, observed=observed)
            assert sum(comp.values()) == observed - bound

    def test_flamegraph_collapsed_stack_format(self, profiled_solve, tmp_path):
        obs, solver, _ = profiled_solve
        path = obs.write_flamegraph(tmp_path / "flame.txt")
        lines = path.read_text().splitlines()
        assert lines
        total = 0
        for line in lines:
            stack, n = line.rsplit(" ", 1)
            total += int(n)
            frames = stack.split(";")
            assert 2 <= len(frames) <= 4
            assert frames[-1] in STATE_NAMES + ("idle_skipped",)
        # Stacks cover every profiled tile-cycle plus skipped spans.
        expect = sum(
            prof.stepped * len(prof.taxonomy())
            + (prof.fabric.cycle - prof.cycle0 - prof.stepped)
            for prof in obs.profiles.values()
        )
        assert total == expect

    def test_chrome_trace_critical_path_tracks(self, profiled_solve,
                                               tmp_path):
        obs, solver, _ = profiled_solve
        path = obs.write_chrome_trace(tmp_path / "p.json")
        data = json.loads(path.read_text())
        events = data["traceEvents"]
        cp = [e for e in events if e.get("cat") == "critical_path"]
        assert cp
        # Per fabric, the highlight track durations sum to the timeline.
        tid_name = {e["tid"]: e["args"]["name"] for e in events
                    if e["ph"] == "M" and e["name"] == "thread_name"}
        per_track: dict[str, int] = {}
        for e in cp:
            track = tid_name[e["tid"]]
            per_track[track] = per_track.get(track, 0) + e["dur"]
        for track, dur in per_track.items():
            assert track.startswith("critical-path:")
            assert dur == solver.report.total_cycles
        # Harvested metric counter tracks rode along (satellite 4).
        names = {e["name"] for e in events if e["ph"] == "C"}
        assert any(n.endswith("router_words_moved") for n in names)

    def test_profile_cli_no_files(self, capsys):
        from repro.obs.cli import profile_main

        rc = profile_main(["--shape", "6", "6", "8", "--maxiter", "4",
                           "--no-files"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "top bottleneck:" in out
        assert "critical-path bottlenecks" in out
        assert "slack attribution" in out

    def test_unprofiled_session_renders_hint(self):
        obs = ObsSession()
        assert "profile=True" in bottleneck_table(obs)
        assert top_bottleneck(obs) is None


class TestBenchHistory:
    def _des_payload(self, cps, mesh=(6, 6, 8)):
        return {"benchmark": "bicgstab_des_engine",
                "workload": {"mesh": list(mesh)},
                "active": {"cycles_per_second": cps}}

    def test_summarize_schemas(self, tmp_path):
        from repro.analysis.bench_history import summarize

        rec = summarize(self._des_payload(1234.5))
        assert rec["cycles_per_second"] == 1234.5
        assert rec["mesh"] == [6, 6, 8]
        rec = summarize({"benchmark": "obs_overhead", "workload": {},
                         "off": {"cycles_per_second": 10.0}})
        assert rec["cycles_per_second"] == 10.0
        rec = summarize({"benchmark": "profile_overhead", "workload": {},
                         "off": {"cycles_per_second": 7.5}})
        assert rec["cycles_per_second"] == 7.5
        rec = summarize({"benchmark": "bicgstab_replay_engine",
                         "workload": {},
                         "replay": {"cycles_per_second": 99.0}})
        assert rec["cycles_per_second"] == 99.0
        rec = summarize({"benchmark": "analyze_cost", "programs": [
            {"program": "a", "all_passes_seconds": 1.5},
            {"program": "b", "all_passes_seconds": 0.5}]})
        assert rec["seconds"] == 2.0 and rec["cycles_per_second"] is None
        assert summarize({"benchmark": "unknown_thing"}) is None

    def test_append_and_compare_ok(self, tmp_path):
        from repro.analysis.bench_history import append_history, compare

        bench = tmp_path / "BENCH_des.json"
        ledger = tmp_path / "BENCH_history.jsonl"
        bench.write_text(json.dumps(self._des_payload(1000.0)))
        recs = append_history([bench], ledger)
        assert len(recs) == 1
        assert len(ledger.read_text().splitlines()) == 1
        lines, regressions = compare([bench], ledger)
        assert regressions == 0
        assert any("OK" in line for line in lines)

    def test_regression_detected(self, tmp_path):
        from repro.analysis.bench_history import append_history, compare

        bench = tmp_path / "BENCH_des.json"
        ledger = tmp_path / "BENCH_history.jsonl"
        bench.write_text(json.dumps(self._des_payload(1000.0)))
        append_history([bench], ledger)
        bench.write_text(json.dumps(self._des_payload(850.0)))
        lines, regressions = compare([bench], ledger)
        assert regressions == 1
        assert any("REGRESSION" in line for line in lines)
        # Within the 10% gate: no failure.
        bench.write_text(json.dumps(self._des_payload(950.0)))
        _lines, regressions = compare([bench], ledger)
        assert regressions == 0

    def test_cross_host_is_advisory(self, tmp_path):
        from repro.analysis.bench_history import compare

        bench = tmp_path / "BENCH_des.json"
        ledger = tmp_path / "BENCH_history.jsonl"
        ledger.write_text(json.dumps({
            "benchmark": "bicgstab_des_engine", "mesh": [6, 6, 8],
            "host": "some-other-box", "timestamp": 1.0,
            "cycles_per_second": 99999.0, "seconds": None}) + "\n")
        bench.write_text(json.dumps(self._des_payload(100.0)))
        lines, regressions = compare([bench], ledger)
        assert regressions == 0
        assert any("advisory" in line for line in lines)

    def test_earliest_same_host_baseline_wins(self, tmp_path):
        import socket

        from repro.analysis.bench_history import compare

        host = socket.gethostname()
        ledger = tmp_path / "BENCH_history.jsonl"
        rows = [
            {"benchmark": "bicgstab_des_engine", "mesh": [6, 6, 8],
             "host": "elsewhere", "timestamp": 1.0,
             "cycles_per_second": 5.0, "seconds": None},
            {"benchmark": "bicgstab_des_engine", "mesh": [6, 6, 8],
             "host": host, "timestamp": 3.0,
             "cycles_per_second": 1000.0, "seconds": None},
            {"benchmark": "bicgstab_des_engine", "mesh": [6, 6, 8],
             "host": host, "timestamp": 2.0,
             "cycles_per_second": 2000.0, "seconds": None},
        ]
        ledger.write_text("\n".join(json.dumps(r) for r in rows) + "\n")
        bench = tmp_path / "BENCH_des.json"
        bench.write_text(json.dumps(self._des_payload(1900.0)))
        # Baseline is the earliest same-host entry (2000), not the
        # foreign 5.0 or the later 1000: 1900 vs 2000 is within 10%.
        lines, regressions = compare([bench], ledger)
        assert regressions == 0
        assert any("2000.0" in line for line in lines)

    def test_cli_round_trip(self, tmp_path, capsys, monkeypatch):
        from repro.analysis.bench_history import compare_main, history_main

        monkeypatch.chdir(tmp_path)
        (tmp_path / "BENCH_des.json").write_text(
            json.dumps(self._des_payload(500.0)))
        assert history_main([]) == 0
        assert (tmp_path / "BENCH_history.jsonl").exists()
        assert compare_main([]) == 0
        out = capsys.readouterr().out
        assert "BENCH COMPARE OK" in out
        (tmp_path / "BENCH_des.json").write_text(
            json.dumps(self._des_payload(100.0)))
        assert compare_main([]) == 1
