"""Tests for the 7-point stencil operator (diagonal storage vs CSR truth)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.precision import Precision
from repro.problems import Stencil7

RNG = np.random.default_rng(13)

shapes = st.tuples(st.integers(1, 5), st.integers(1, 5), st.integers(1, 6))


class TestConstruction:
    def test_missing_diag_defaults_to_identity(self):
        op = Stencil7({"xp": np.zeros((2, 2, 2))})
        assert op.has_unit_diagonal
        v = RNG.standard_normal((2, 2, 2))
        np.testing.assert_array_equal(op.apply(v), v)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="shape"):
            Stencil7({"diag": np.ones((2, 2, 2)), "xp": np.zeros((3, 2, 2))})

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown stencil"):
            Stencil7({"diag": np.ones((2, 2, 2)), "qq": np.zeros((2, 2, 2))})

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            Stencil7({})

    def test_non_3d_raises(self):
        with pytest.raises(ValueError, match="3D"):
            Stencil7({"diag": np.ones((2, 2))})

    def test_n(self):
        op = Stencil7.identity((3, 4, 5))
        assert op.n == 60

    def test_validate_catches_boundary_coupling(self):
        c = np.zeros((3, 3, 3))
        c[-1, 0, 0] = 1.0  # xp leg on the last x-plane: couples off-mesh
        op = Stencil7({"diag": np.ones((3, 3, 3)), "xp": c})
        with pytest.raises(ValueError, match="boundary"):
            op.validate()

    def test_from_random_validates(self):
        op = Stencil7.from_random((4, 4, 4), rng=RNG)
        op.validate()  # must not raise

    def test_from_random_symmetric(self):
        op = Stencil7.from_random((3, 4, 5), rng=RNG, symmetric=True)
        A = op.to_csr()
        diff = abs(A - A.T)
        assert diff.max() < 1e-12


class TestApplyVsCSR:
    def test_random_operator(self):
        op = Stencil7.from_random((4, 5, 6), rng=RNG)
        v = RNG.standard_normal(op.shape)
        u = op.apply(v)
        ref = (op.to_csr() @ v.ravel()).reshape(op.shape)
        np.testing.assert_allclose(u, ref, rtol=1e-13, atol=1e-13)

    def test_flat_input_round_trip(self):
        op = Stencil7.from_random((3, 3, 3), rng=RNG)
        v = RNG.standard_normal(27)
        u = op.apply(v)
        assert u.shape == (27,)
        np.testing.assert_allclose(u, op.to_csr() @ v, rtol=1e-13)

    def test_out_parameter(self):
        op = Stencil7.from_random((3, 3, 4), rng=RNG)
        v = RNG.standard_normal(op.shape)
        out = np.empty(op.shape)
        ret = op.apply(v, out=out)
        assert ret.base is out or ret is out
        np.testing.assert_allclose(out, op.apply(v))

    def test_matmul_operator(self):
        op = Stencil7.from_random((3, 3, 3), rng=RNG)
        v = RNG.standard_normal(op.shape)
        np.testing.assert_array_equal(op @ v, op.apply(v))

    @given(shapes, st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_apply_equals_csr_property(self, shape, seed):
        rng = np.random.default_rng(seed)
        op = Stencil7.from_random(shape, rng=rng)
        v = rng.standard_normal(shape)
        u = op.apply(v)
        ref = (op.to_csr() @ v.ravel()).reshape(shape)
        np.testing.assert_allclose(u, ref, rtol=1e-12, atol=1e-12)

    def test_single_point_mesh(self):
        op = Stencil7({"diag": np.full((1, 1, 1), 2.0)})
        assert op.apply(np.array([[[3.0]]]))[0, 0, 0] == 6.0


class TestPrecisionModes:
    def test_fp16_apply_rounds(self):
        op = Stencil7.from_random((3, 3, 4), rng=RNG)
        pre, _, _ = op.jacobi_precondition()
        v = (0.1 * RNG.standard_normal(op.shape)).astype(np.float16)
        u16 = pre.apply(v, precision="mixed")
        assert u16.dtype == np.float16
        u64 = pre.apply(v.astype(np.float64))
        # fp16 arithmetic error is bounded by a few ulps of the magnitudes.
        assert np.max(np.abs(u16.astype(np.float64) - u64)) < 0.01

    def test_rounded_copy(self):
        op = Stencil7.from_random((2, 2, 2), rng=RNG)
        r = op.rounded(Precision.MIXED)
        for name in op.coeffs:
            np.testing.assert_array_equal(
                r.coeffs[name], op.coeffs[name].astype(np.float16).astype(np.float64)
            )


class TestJacobiPreconditioning:
    def test_unit_diagonal_after(self):
        op = Stencil7.from_random((3, 4, 5), rng=RNG)
        pre, _, dinv = op.jacobi_precondition()
        assert pre.has_unit_diagonal
        np.testing.assert_allclose(dinv * op.coeffs["diag"], 1.0)

    def test_solution_preserved(self):
        op = Stencil7.from_random((3, 3, 3), rng=RNG)
        x = RNG.standard_normal(op.shape)
        b = op.apply(x)
        pre, bp, _ = op.jacobi_precondition(b)
        np.testing.assert_allclose(pre.apply(x), bp, rtol=1e-12)

    def test_zero_diagonal_raises(self):
        c = np.ones((2, 2, 2))
        c[0, 0, 0] = 0.0
        op = Stencil7({"diag": c})
        with pytest.raises(ZeroDivisionError):
            op.jacobi_precondition()

    def test_no_rhs_returns_none(self):
        op = Stencil7.from_random((2, 2, 2), rng=RNG)
        _, bp, _ = op.jacobi_precondition()
        assert bp is None
