"""Tests for Table I (op counts), Table II (SIMPLE cycles), and Fig. 1
(machine balance)."""

import pytest

from repro.perfmodel import (
    SimpleCostModel,
    balance_table,
    cs1_balance,
    derive_counts,
    measured_counts,
    table1,
    table2,
)


class TestTable1:
    def test_totals_row(self):
        rows = table1()
        total = rows[-1]
        assert total.name == "Total"
        assert total.sp_add == 22
        assert total.sp_mul == 22
        assert total.mixed_hp_add == 18
        assert total.mixed_hp_mul == 22
        assert total.mixed_sp_add == 4

    def test_grand_total_44(self):
        total = table1()[-1]
        assert total.total_single == 44
        assert total.total_mixed == 44

    def test_row_values_match_paper(self):
        rows = {r.name: r for r in table1()}
        assert (rows["Matvec"].sp_add, rows["Matvec"].sp_mul) == (12, 12)
        assert (rows["Dot"].mixed_hp_mul, rows["Dot"].mixed_sp_add) == (4, 4)
        assert rows["Dot"].mixed_hp_add == 0
        assert (rows["AXPY"].mixed_hp_add, rows["AXPY"].mixed_hp_mul) == (6, 6)

    def test_kernel_counts(self):
        rows = {r.name: r for r in table1()}
        assert rows["Matvec"].count == 2
        assert rows["Dot"].count == 4
        assert rows["AXPY"].count == 6

    def test_derived_equals_table(self):
        """The counts must be derivable from the kernel structure."""
        d = derive_counts()
        rows = {r.name: r for r in table1()}
        assert d["matvec_mul"] == rows["Matvec"].sp_mul
        assert d["matvec_add"] == rows["Matvec"].sp_add
        assert d["dot_mul"] + d["axpy_mul"] == rows["Dot"].sp_mul + rows["AXPY"].sp_mul
        assert d["total"] == 44

    def test_measured_from_instrumented_solver(self):
        m = measured_counts(iterations=4)
        assert m["matvec_mul"] == pytest.approx(12)
        assert m["matvec_add"] == pytest.approx(12)
        assert m["dots_per_iteration"] == pytest.approx(4)


class TestTable2:
    def test_phases_present(self):
        names = [p.name for p in table2()]
        assert names == ["Initialization", "Momentum", "Continuity", "Field Update"]

    def test_printed_totals(self):
        totals = {p.name: p.printed_total for p in table2()}
        assert totals["Initialization"] == (45, 64)
        assert totals["Momentum"] == (79, 213)
        assert totals["Continuity"] == (37, 81)
        assert totals["Field Update"] == (4, 6)

    def test_component_sums_near_printed(self):
        """Components sum to the printed totals (the momentum low total
        prints 79 vs a 77 component sum in the source — tolerated)."""
        for p in table2():
            lo, hi = p.component_total
            plo, phi = p.printed_total
            assert abs(lo - plo) <= 2
            assert abs(hi - phi) <= 2

    def test_sqrt_and_divide_costs(self):
        """Momentum does one sqrt (13 cycles) and one divide (15-16)."""
        mom = {p.name: p for p in table2()}["Momentum"]
        assert mom.sqrt == (13, 13)
        assert mom.divide == (15, 16)


class TestCfdThroughput:
    def test_paper_band_80_125(self):
        """Paper section VI.A: 'between 80 and 125 timesteps per second'
        for 600^3 with 15 SIMPLE iterations.  Our model's band must
        substantially overlap."""
        lo, hi = SimpleCostModel().timesteps_per_second_range()
        assert lo < 125 and hi > 80
        assert 60 < lo < hi < 160

    def test_over_200x_joule(self):
        """Paper: 'above 200 times faster than ... 16,384-core ... Joule'."""
        assert SimpleCostModel().joule_speedup() > 200

    def test_more_simple_iters_slower(self):
        fast = SimpleCostModel(simple_iters=5).timesteps_per_second()
        slow = SimpleCostModel(simple_iters=20).timesteps_per_second()
        assert fast > slow

    def test_continuity_budget_dominates(self):
        """20 continuity solver iterations vs 3x5 momentum: the solver
        share is ~58% continuity."""
        m = SimpleCostModel()
        assert m.continuity_solver_iters == 20
        assert m.momentum_solver_iters == 5

    def test_allreduce_inclusive_variant_slower(self):
        base = SimpleCostModel().timesteps_per_second()
        conservative = SimpleCostModel(include_allreduce=True).timesteps_per_second()
        assert conservative < base

    def test_microseconds_per_z_meshpoint_order(self):
        us = SimpleCostModel().microseconds_per_z_meshpoint()
        assert 5 < us < 40  # ~16 us/point/step at 600^3 (see module docs)


class TestBalance:
    def test_cs1_memory_balance_3_bytes_per_flop(self):
        """Paper: the CS-1 'can move three bytes to and from memory for
        every flop' — i.e. ~2.7 flops per 8-byte word."""
        e = cs1_balance()
        assert e.flops_per_word_memory == pytest.approx(8 / 3, rel=0.01)

    def test_cs1_injection_quarter_of_flops(self):
        e = cs1_balance()
        assert e.flops_per_word_interconnect == pytest.approx(4.0)

    def test_cs1_latency_coverage_single_digit(self):
        e = cs1_balance()
        assert e.flops_to_cover_memory_latency <= 8
        assert e.flops_to_cover_network_latency <= 8

    def test_conventional_systems_hundreds(self):
        """Paper: 'In 2016 the flops to words ratios ... were in the
        hundreds', latency coverage 10k-100k."""
        modern = [e for e in balance_table() if 2014 <= e.year <= 2018]
        assert modern
        for e in modern:
            assert e.flops_per_word_memory >= 50
            assert e.flops_per_word_interconnect >= 300
            assert 1e4 <= e.flops_to_cover_memory_latency <= 1e5 or \
                   1e4 <= e.flops_to_cover_network_latency <= 1e5

    def test_cs1_returns_to_vector_era_balance(self):
        """Fig. 1's story: the CS-1 sits at the desirable bottom, ~two
        orders of magnitude better balanced than its contemporaries and
        back in the vector-supercomputer regime."""
        table = balance_table()
        cs1 = table[-1]
        assert cs1.system.startswith("Cerebras")
        contemporaries = [e for e in table if e.year >= 2014 and e is not cs1]
        for e in contemporaries:
            assert e.flops_per_word_memory / cs1.flops_per_word_memory > 20
        vector_era = min(table, key=lambda e: e.year)
        assert cs1.flops_per_word_memory < 4 * vector_era.flops_per_word_memory

    def test_trend_worsens_over_time(self):
        history = [e for e in balance_table() if not e.system.startswith("Cerebras")]
        ratios = [e.flops_per_word_memory for e in sorted(history, key=lambda e: e.year)]
        assert ratios == sorted(ratios)
