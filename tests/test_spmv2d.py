"""Tests for the 2D block mapping (section IV.2): the output-halo
exchange SpMV and the memory/overhead models behind the paper's claims."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import (
    Block2DModel,
    block_memory_words,
    block_spmv,
    halo_overhead_fraction,
    max_block_size,
    max_mesh_extent,
)
from repro.problems import Stencil9

RNG = np.random.default_rng(47)


class TestBlockSpmv:
    @pytest.mark.parametrize("shape,block", [
        ((8, 8), (4, 4)),
        ((12, 8), (4, 4)),
        ((6, 9), (3, 3)),
        ((8, 8), (8, 8)),   # single block
        ((10, 10), (2, 5)),  # non-square blocks
    ])
    def test_matches_rowwise_apply(self, shape, block):
        op = Stencil9.from_random(shape, rng=RNG)
        v = RNG.standard_normal(shape)
        u = block_spmv(op, v, block)
        np.testing.assert_allclose(u, op.apply(v), rtol=1e-12, atol=1e-12)

    def test_preconditioned_operator(self):
        op, _, _ = Stencil9.from_random((8, 8), rng=RNG).jacobi_precondition()
        v = RNG.standard_normal((8, 8))
        np.testing.assert_allclose(
            block_spmv(op, v, (4, 4)), op.apply(v), rtol=1e-12
        )

    def test_indivisible_blocks_rejected(self):
        op = Stencil9.from_random((8, 8), rng=RNG)
        with pytest.raises(ValueError, match="does not tile"):
            block_spmv(op, np.zeros((8, 8)), (3, 3))

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_block_spmv_property(self, seed):
        rng = np.random.default_rng(seed)
        op = Stencil9.from_random((6, 6), rng=rng)
        v = rng.standard_normal((6, 6))
        np.testing.assert_allclose(
            block_spmv(op, v, (3, 3)), op.apply(v), rtol=1e-11, atol=1e-11
        )

    def test_corner_coupling_crosses_blocks(self):
        """A unit ne-coupling across a block corner must arrive via the
        two-round (x then y) halo exchange — no diagonal sends."""
        shape = (4, 4)
        ne = np.zeros(shape)
        ne[1, 1] = 1.0  # point (1,1) couples to (2,2): different 2x2 block
        op = Stencil9({"diag": np.ones(shape), "ne": ne})
        v = np.zeros(shape)
        v[2, 2] = 3.0
        u = block_spmv(op, v, (2, 2))
        assert u[1, 1] == pytest.approx(3.0 + 0.0)  # 1*v[1,1]=0 diag + 3
        np.testing.assert_allclose(u, op.apply(v))


class TestMemoryModel:
    def test_max_block_is_38(self):
        """Paper: 'a sub-block up-to 38x38 in size'."""
        assert max_block_size() == 38

    def test_38_fits_39_does_not(self):
        cap_words = 48 * 1024 // 2
        assert block_memory_words(38) <= cap_words
        assert block_memory_words(39) > cap_words

    def test_mesh_extent_22800(self):
        """Paper: 'corresponding to geometries of 22800x22800'."""
        assert max_mesh_extent(600) == 22800

    def test_memory_monotone(self):
        assert block_memory_words(8) < block_memory_words(16) < block_memory_words(38)

    def test_invalid_block(self):
        with pytest.raises(ValueError):
            block_memory_words(0)


class TestOverheadModel:
    def test_under_20_percent_at_8x8(self):
        """Paper: 'When a core holds only an 8x8 region ... the overhead
        remains less than 20%'."""
        assert halo_overhead_fraction(8) < 0.20

    def test_overhead_decreases_with_block_size(self):
        assert (
            halo_overhead_fraction(38)
            < halo_overhead_fraction(16)
            < halo_overhead_fraction(8)
            < halo_overhead_fraction(4)
        )

    def test_small_blocks_are_expensive(self):
        assert halo_overhead_fraction(2) > 0.3

    def test_invalid(self):
        with pytest.raises(ValueError):
            halo_overhead_fraction(0)


class TestBlock2DModel:
    def test_for_block_38(self):
        m = Block2DModel.for_block(38)
        assert m.fits
        assert m.mesh_extent_600 == 22800
        assert m.memory_bytes <= 48 * 1024

    def test_for_block_39_does_not_fit(self):
        assert not Block2DModel.for_block(39).fits
