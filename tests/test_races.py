"""Tests for the happens-before race detector and runtime sanitizer.

Four families:

* **exact strided intersection** — `strided_overlap_witness` held to a
  brute-force index-set intersection on Hypothesis-generated
  descriptor pairs (no false positives, no false negatives, smallest
  witness);
* **seeded defects** — racy programs the `races` (cross-task) and
  `dsr` (intra-task) passes must each flag with exactly one diagnostic
  of the right kind, plus ordered variants that must stay clean;
* **counterexample validation** — every static `race` witness must
  trip the runtime sanitizer via `confirm_race` under both stepping
  engines;
* **the runtime sanitizer** — `Fabric.run(sanitize=True)` raises
  `FabricRaceError` on a real race, stays silent and bit-identical on
  a clean program, and accounts its work into the metrics registry.
"""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs import MetricsRegistry
from repro.wse import CS1, Core, Fabric, FabricRaceError, RaceSanitizer
from repro.wse.analyze import (
    InstrDecl,
    MemRef,
    analyze_program,
    build_hb_graph,
    confirm_race,
    races_pass,
    strided_overlap_witness,
    synthesize_race_program,
)
from repro.wse.dsr import Action, Instruction, MemCursor


def _noop(core):
    pass


def _one_core_fabric():
    f = Fabric(1, 1)
    core = Core(0, 0, CS1)
    f.attach_core(0, 0, core)
    return f, core


# ----------------------------------------------------------------------
# Exact strided-set intersection (the shared overlap oracle)
# ----------------------------------------------------------------------
memrefs = st.builds(
    MemRef,
    array=st.just("a"),
    offset=st.integers(min_value=0, max_value=60),
    length=st.integers(min_value=0, max_value=24),
    stride=st.integers(min_value=-7, max_value=7),
)


class TestStridedOverlapWitness:
    @given(memrefs, memrefs)
    def test_matches_bruteforce_intersection(self, a, b):
        """The GCD/CRT witness is exactly min(set(a) & set(b))."""
        truth = set(a.indices()) & set(b.indices())
        witness = strided_overlap_witness(a, b)
        if truth:
            assert witness == min(truth)
        else:
            assert witness is None

    @given(memrefs, memrefs)
    def test_symmetric(self, a, b):
        assert strided_overlap_witness(a, b) == strided_overlap_witness(b, a)

    def test_interleaved_strides_disjoint(self):
        """Overlapping envelopes, disjoint index sets: no witness."""
        a = MemRef("a", 0, 8, stride=2)   # evens
        b = MemRef("a", 1, 8, stride=2)   # odds
        assert strided_overlap_witness(a, b) is None

    def test_crt_finds_sparse_meeting_point(self):
        a = MemRef("a", 0, 10, stride=3)  # 0,3,...,27
        b = MemRef("a", 1, 10, stride=7)  # 1,8,15,22,...
        assert strided_overlap_witness(a, b) == 15


# ----------------------------------------------------------------------
# Intra-task conflicts (the dsr pass) — read-write overlap
# ----------------------------------------------------------------------
class TestDsrReadWriteRace:
    def test_seeded_read_write_overlap(self):
        """A writer on one slot overlapping another slot's read is a
        read-write-race (exactly one finding)."""
        f, core = _one_core_fabric()
        core.scheduler.add("rw", _noop)
        core.scheduler.activate("rw")
        core.memory.alloc("buf", 16, np.float16)
        core.memory.alloc("out", 16, np.float16)
        core.program_decl.task("rw", launches=(
            InstrDecl("copy", MemRef("buf", 0, 10), (), length=10,
                      thread=0, name="writer"),
            InstrDecl("copy", MemRef("out", 0, 8), (MemRef("buf", 8, 8),),
                      length=8, thread=1, name="reader"),
        ))
        report = analyze_program(f)
        assert len(report) == 1
        (d,) = report
        assert (d.pass_name, d.kind) == ("dsr", "read-write-race")
        assert d.severity.value == "error"

    def test_disjoint_read_and_write_stay_clean(self):
        f, core = _one_core_fabric()
        core.scheduler.add("ok", _noop)
        core.scheduler.activate("ok")
        core.memory.alloc("buf", 16, np.float16)
        core.memory.alloc("out", 16, np.float16)
        core.program_decl.task("ok", launches=(
            InstrDecl("copy", MemRef("buf", 0, 8), (), length=8,
                      thread=0, name="writer"),
            InstrDecl("copy", MemRef("out", 0, 8), (MemRef("buf", 8, 8),),
                      length=8, thread=1, name="reader"),
        ))
        assert analyze_program(f).ok


# ----------------------------------------------------------------------
# Cross-task may-happen-in-parallel (the races pass)
# ----------------------------------------------------------------------
def _two_task_program(ordered: bool, mode_b: str = "w"):
    """Two tasks, each launching one instruction on its own slot over
    overlapping halves of `buf`.  When `ordered`, task b is activated
    solely by a's completion (a happens-before edge); otherwise both
    start activated and race."""
    f, core = _one_core_fabric()
    core.memory.alloc("buf", 16, np.float16)
    core.memory.alloc("out", 16, np.float16)
    core.scheduler.add("a", _noop)
    core.scheduler.activate("a")
    core.scheduler.add("b", _noop)
    if not ordered:
        core.scheduler.activate("b")
    completions = (("b", Action.ACTIVATE),) if ordered else ()
    core.program_decl.task("a", launches=(
        InstrDecl("copy", MemRef("buf", 0, 10), (), length=10,
                  thread=0, name="wa", completions=completions),
    ))
    if mode_b == "w":
        instr_b = InstrDecl("copy", MemRef("buf", 8, 8), (), length=8,
                            thread=1, name="wb")
    else:
        instr_b = InstrDecl("copy", MemRef("out", 0, 8),
                            (MemRef("buf", 8, 8),), length=8,
                            thread=1, name="rb")
    core.program_decl.task("b", launches=(instr_b,))
    return f


class TestRacesPass:
    def test_seeded_write_write_race(self):
        report = analyze_program(_two_task_program(ordered=False))
        assert len(report) == 1
        (d,) = report
        assert (d.pass_name, d.kind) == ("races", "race")
        assert d.where == (0, 0)
        acc_a, acc_b, witness, missing = d.data
        assert acc_a[:4] == ("a", "wa", 0, "w")
        assert acc_b[:4] == ("b", "wb", 1, "w")
        assert witness == 8  # smallest commonly-written element
        assert missing == (("a", "wa", "end"), ("b", "wb", "start"))

    def test_seeded_read_write_race(self):
        report = analyze_program(_two_task_program(ordered=False,
                                                   mode_b="r"))
        kinds = [(d.pass_name, d.kind) for d in report]
        assert kinds == [("races", "race")]

    def test_completion_ordering_suppresses_race(self):
        """The same footprints ordered by a completion trigger: clean."""
        assert analyze_program(_two_task_program(ordered=True)).ok

    def test_two_activators_keep_the_race(self):
        """With two possible activators the pass must not invent order."""
        f = _two_task_program(ordered=True)
        core = f.core(0, 0)
        # A second task that can also activate b: the sole-activator
        # rule no longer applies, so the pair races again.
        core.scheduler.add("c", _noop)
        core.scheduler.activate("c")
        core.program_decl.task("c", actions=(("b", Action.ACTIVATE),))
        report = analyze_program(f, passes=("races",))
        assert [d.kind for d in report] == ["race"]

    def test_hb_graph_orders_completion_chain(self):
        f = _two_task_program(ordered=True)
        g = build_hb_graph(f, [((0, 0), f.core(0, 0))])
        pos = (0, 0)
        assert g.reaches((pos, "i", "a", 0, "e"), (pos, "i", "b", 0, "s"))
        assert not g.reaches((pos, "i", "b", 0, "s"),
                             (pos, "i", "a", 0, "e"))

    def test_shipped_spmv3d_is_race_clean(self):
        from repro.kernels.spmv3d import build_spmv_fabric
        from repro.problems.stencil7 import Stencil7

        op, _b, _dinv = Stencil7.from_random((3, 3, 6)).jacobi_precondition()
        fabric, _programs = build_spmv_fabric(op, np.zeros(op.shape))
        assert not races_pass(
            fabric,
            [((x, y), fabric.core(x, y))
             for y in range(fabric.height) for x in range(fabric.width)],
        )


# ----------------------------------------------------------------------
# Witness -> minimal program -> sanitizer confirmation
# ----------------------------------------------------------------------
class TestConfirmRace:
    @pytest.mark.parametrize("engine", ["active", "reference"])
    def test_static_race_confirmed_by_sanitizer(self, engine):
        """Acceptance criterion: every seeded `race` diagnostic is
        validated by the runtime sanitizer under both engines."""
        (diag,) = analyze_program(_two_task_program(ordered=False),
                                  passes=("races",))
        err = confirm_race(diag, engine=engine)
        assert isinstance(err, FabricRaceError)
        assert err.array == "buf"
        assert err.index == 8
        names = {err.access_a[0], err.access_b[0]}
        assert names == {"a.wa", "b.wb"}

    def test_read_write_witness_confirmed(self):
        (diag,) = analyze_program(
            _two_task_program(ordered=False, mode_b="r"),
            passes=("races",),
        )
        assert isinstance(confirm_race(diag), FabricRaceError)

    def test_unconfirmable_claim_raises(self):
        """A (hand-forged) witness whose accesses are disjoint cannot
        trip the sanitizer: confirm_race must report the failed
        validation instead of silently passing."""
        bogus = (
            ("a", "wa", 0, "w", "buf", 0, 8, 1),
            ("b", "wb", 1, "w", "buf", 8, 8, 1),
            8,
            (("a", "wa", "end"), ("b", "wb", "start")),
        )
        with pytest.raises(RuntimeError, match="failed validation"):
            confirm_race(bogus)

    def test_synthesized_program_is_minimal(self):
        (diag,) = analyze_program(_two_task_program(ordered=False),
                                  passes=("races",))
        ce = synthesize_race_program(diag.data)
        assert (ce.width, ce.height) == (1, 1)
        assert "buf" in ce.core(0, 0).memory._allocs


# ----------------------------------------------------------------------
# The runtime sanitizer itself
# ----------------------------------------------------------------------
def _racy_runtime_fabric():
    f, core = _one_core_fabric()
    buf = core.memory.alloc("buf", 16, np.float32)
    s0 = core.memory.alloc("s0", 10, np.float32, fill=1.0)
    s1 = core.memory.alloc("s1", 8, np.float32, fill=2.0)
    core.launch(Instruction("copy", MemCursor(buf, 0, 10, 1),
                            [MemCursor(s0, 0, 10, 1)], length=10,
                            name="w0"), 0)
    core.launch(Instruction("copy", MemCursor(buf, 8, 8, 1),
                            [MemCursor(s1, 0, 8, 1)], length=8,
                            name="w1"), 1)
    return f


class TestRuntimeSanitizer:
    @pytest.mark.parametrize("engine", ["active", "reference"])
    def test_concurrent_overlapping_writes_raise(self, engine):
        f = _racy_runtime_fabric()
        f.engine = engine
        with pytest.raises(FabricRaceError, match="no happens-before"):
            f.run(max_cycles=1_000, sanitize=True)

    def test_error_names_the_conflict(self):
        with pytest.raises(FabricRaceError) as exc:
            _racy_runtime_fabric().run(max_cycles=1_000, sanitize=True)
        err = exc.value
        assert err.array == "buf" and err.core == (0, 0)
        assert err.index in range(8, 10)
        assert {err.access_a[0], err.access_b[0]} == {"w0", "w1"}

    def test_sanitize_run_detaches_after(self):
        f = _racy_runtime_fabric()
        with pytest.raises(FabricRaceError):
            f.run(max_cycles=1_000, sanitize=True)
        assert f.sanitizer is None
        assert f.core(0, 0).sanitizer is None

    def test_serialized_main_queue_is_clean(self):
        """The same overlapping writes on the main queue: serialized,
        no race, and the data lands deterministically."""
        f, core = _one_core_fabric()
        buf = core.memory.alloc("buf", 16, np.float32)
        s0 = core.memory.alloc("s0", 10, np.float32, fill=1.0)
        s1 = core.memory.alloc("s1", 8, np.float32, fill=2.0)
        core.launch(Instruction("copy", MemCursor(buf, 0, 10, 1),
                                [MemCursor(s0, 0, 10, 1)], length=10), None)
        core.launch(Instruction("copy", MemCursor(buf, 8, 8, 1),
                                [MemCursor(s1, 0, 8, 1)], length=8), None)
        f.run(max_cycles=1_000, sanitize=True)
        assert buf[8] == 2.0  # second write won, in program order

    def test_clean_program_bit_identical_and_counted(self):
        """A sanitized AXPY run matches the plain run byte-for-byte and
        accounts its shadow work into the metrics registry."""
        from repro.kernels.blas_des import build_axpy_fabric

        x = np.linspace(-1, 1, 32)
        y = np.linspace(1, -1, 32)

        def run(san):
            fabric, out, instr = build_axpy_fabric(0.5, x, y)
            if san is not None:
                fabric.attach_sanitizer(san)
            while not instr.finished:
                fabric.step()
            return np.asarray(getattr(out, "value", out)).tobytes()

        plain = run(None)
        registry = MetricsRegistry()
        san = RaceSanitizer(metrics=registry)
        assert run(san) == plain
        assert san.races == 0
        assert san.instructions_tracked >= 1
        assert san.accesses_checked >= 64  # 32 reads + 32 writes
        counters = registry.as_dict()
        assert counters["sanitizer.instructions_tracked"]["value"] \
            == san.instructions_tracked
        assert counters["sanitizer.accesses_checked"]["value"] \
            == san.accesses_checked

    def test_attach_twice_rejected(self):
        f, _core = _one_core_fabric()
        f.attach_sanitizer()
        with pytest.raises(RuntimeError, match="already"):
            f.attach_sanitizer()
        f.detach_sanitizer()
        assert f.sanitizer is None
