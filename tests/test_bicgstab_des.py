"""Tests for BiCGStab with fully simulated data motion (DES mode)."""

import numpy as np
import pytest

from repro.kernels import DESBiCGStab
from repro.perfmodel import WaferPerfModel
from repro.problems import Stencil7, momentum_system
from repro.solver import WaferBiCGStab

RNG = np.random.default_rng(71)


@pytest.fixture(scope="module")
def small_system():
    return momentum_system((4, 4, 8), reynolds=50.0, dt=0.02)


@pytest.fixture(scope="module")
def des_result(small_system):
    solver = DESBiCGStab(small_system.operator)
    res = solver.solve(small_system.b, rtol=5e-3, maxiter=25)
    return solver, res


class TestDESSolve:
    def test_converges(self, small_system, des_result):
        _, res = des_result
        assert res.converged
        assert small_system.relative_residual(res.x) < 0.05

    def test_solution_matches_functional_wafer_solver(self, small_system,
                                                      des_result):
        """The DES mode and the functional mode implement the same
        arithmetic; solutions agree at fp16 noise."""
        _, res = des_result
        fres = WaferBiCGStab().solve(small_system, rtol=5e-3, maxiter=25)
        scale = np.max(np.abs(fres.x)) + 1e-30
        assert np.max(np.abs(res.x - fres.x)) / scale < 0.02

    def test_requires_unit_diagonal(self):
        op = Stencil7.from_random((3, 3, 4), rng=RNG)
        with pytest.raises(ValueError, match="preconditioned"):
            DESBiCGStab(op)

    def test_zero_rhs(self):
        op = Stencil7.identity((4, 4, 4))
        res = DESBiCGStab(op).solve(np.zeros(op.shape))
        assert res.converged and res.iterations == 0


class TestCycleAccounting:
    def test_report_populated(self, des_result):
        solver, res = des_result
        rep = solver.report
        assert rep.spmv_runs == 2 * res.iterations
        # 7 dots per iteration (bnorm + rho once; 5 per iteration incl.
        # the norm check) -- every one through the simulated AllReduce.
        assert rep.allreduce_runs == 2 + 5 * res.iterations
        assert rep.spmv_cycles > 0
        assert rep.allreduce_cycles > 0
        assert rep.axpy_cycles > 0
        assert rep.total_cycles == (
            rep.spmv_cycles + rep.allreduce_cycles + rep.axpy_cycles
            + rep.dot_local_cycles
        )

    def test_cycles_per_iteration_reported(self, des_result):
        _, res = des_result
        assert res.info["cycles_per_iteration"] > 0

    def test_des_cycles_vs_analytic_model(self, small_system, des_result):
        """The DES per-iteration cycles must land in the analytic
        model's envelope: above the no-overhead compute floor scaled by
        the optimistic DES issue model, below the calibrated budget
        inflated for the tiny fabric (where AllReduce fixed costs
        dominate relative to Z=8 columns)."""
        _, res = des_result
        per_iter = res.info["cycles_per_iteration"]
        z = small_system.shape[2]
        # Floor: two SpMVs at >= Z cycles each (fabric-limited).
        assert per_iter > 2 * z
        # Ceiling: generous multiple of the model's compute+collective
        # budget at this Z and 4x4 fabric.
        m = WaferPerfModel()
        ar = 7 * (m.allreduce_cycles((4, 4, z)))
        budget = 3 * (m.compute_overhead * 9.5 * z + ar)
        assert per_iter < budget
