"""Tests for the Joule cluster model (Figs. 7-8 anchors and shapes)."""

import pytest

from repro.perfmodel import ClusterModel, JouleSpec


@pytest.fixture(scope="module")
def model():
    return ClusterModel()


class TestAnchors:
    def test_600_cubed_75ms_at_1024(self, model):
        """Paper: 'time per BiCGstab iteration on Joule ranges from 75 ms
        on 1024 cores'."""
        t = model.iteration_time((600, 600, 600), 1024)
        assert t == pytest.approx(75e-3, rel=0.05)

    def test_600_cubed_6ms_at_16k(self, model):
        """'...and scales down to about 6 ms on 16K cores'."""
        t = model.iteration_time((600, 600, 600), 16384)
        assert t == pytest.approx(6e-3, rel=0.10)

    def test_214x_cs1_speedup(self, model):
        """'This is about 214 times more than the 28.1 microseconds'."""
        s = model.cs1_speedup()
        assert s == pytest.approx(214, rel=0.06)


class TestScalingShape:
    def test_600_cubed_keeps_scaling(self, model):
        """Fig. 8: the larger mesh scales (sublinearly) to 16K cores."""
        curve = model.scaling_curve((600, 600, 600))
        times = [r["time_ms"] for r in curve]
        assert all(t1 > t2 for t1, t2 in zip(times, times[1:]))
        # each doubling still gains at least 1.3x on the big mesh
        for t1, t2 in zip(times, times[1:]):
            assert t1 / t2 > 1.3

    def test_370_cubed_stalls_beyond_8k(self, model):
        """Fig. 7: 'The failure to scale beyond 8K cores on the smaller
        mesh' — the last doubling must gain well under the big mesh's."""
        curve = model.scaling_curve((370, 370, 370))
        t8k = next(r["time_ms"] for r in curve if r["cores"] == 8192)
        t16k = next(r["time_ms"] for r in curve if r["cores"] == 16384)
        gain_small = t8k / t16k
        curve_big = model.scaling_curve((600, 600, 600))
        t8k_b = next(r["time_ms"] for r in curve_big if r["cores"] == 8192)
        t16k_b = next(r["time_ms"] for r in curve_big if r["cores"] == 16384)
        gain_big = t8k_b / t16k_b
        assert gain_small < gain_big
        assert gain_small < 1.55  # far from the ideal 2x

    def test_parallel_efficiency_declines(self, model):
        e2k = model.parallel_efficiency((370, 370, 370), 2048)
        e16k = model.parallel_efficiency((370, 370, 370), 16384)
        assert e16k < e2k <= 1.05

    def test_allreduce_grows_with_cores(self, model):
        assert model.allreduce_time(16384) > model.allreduce_time(1024)

    def test_compute_shrinks_with_cores(self, model):
        n = 600**3
        assert model.compute_time(n, 16384) < model.compute_time(n, 1024)

    def test_halo_latency_floor(self, model):
        """At extreme rank counts the halo time hits the latency floor."""
        t = model.halo_time((100, 100, 100), 10**6)
        assert t >= 12 * model.spec.net_latency


class TestSpec:
    def test_joule_hardware(self):
        """Paper: Xeon Gold 6148, 20-core, 2.4GHz, Omni-Path."""
        spec = JouleSpec()
        assert spec.cores_per_node == 40  # dual socket x 20
        assert spec.clock_hz == 2.4e9
        assert spec.net_bw_per_node == pytest.approx(12.5e9)  # 100 Gb/s

    def test_custom_spec_respected(self):
        slow = ClusterModel(spec=JouleSpec(mem_efficiency=0.05))
        fast = ClusterModel(spec=JouleSpec(mem_efficiency=0.5))
        t_slow = slow.iteration_time((600, 600, 600), 1024)
        t_fast = fast.iteration_time((600, 600, 600), 1024)
        assert t_slow > t_fast

    def test_fp64_bytes_per_point(self):
        from repro.perfmodel.cluster import BYTES_PER_POINT_PER_ITER_FP64

        assert BYTES_PER_POINT_PER_ITER_FP64 == 44 * 8
