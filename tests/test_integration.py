"""Cross-module integration tests: the paper's end-to-end stories.

Each test here stitches several subsystems together the way the paper's
experiments do: wafer vs cluster on the same system, the Fig. 9
precision study, the SpMV kernels' three-way agreement, and the CFD
timestep projection fed by the calibrated solver model.
"""

import numpy as np
import pytest

from repro.clustersim import cluster_bicgstab
from repro.kernels import run_spmv_des, spmv_functional
from repro.perfmodel import ClusterModel, SimpleCostModel, WaferPerfModel
from repro.problems import momentum_system, poisson_system
from repro.solver import WaferBiCGStab, bicgstab, refined_solve

RNG = np.random.default_rng(67)


class TestThreeWaySpmvAgreement:
    def test_des_functional_csr(self):
        """Detailed simulator == functional kernel == CSR, at fp16 noise."""
        sys_ = momentum_system((4, 4, 8), reynolds=50.0)
        op = sys_.operator
        v = 0.1 * RNG.standard_normal(op.shape)
        v16 = np.asarray(v, np.float16).astype(np.float64)
        u_des, _ = run_spmv_des(op, v)
        u_fun = spmv_functional(op, v16).astype(np.float64)
        u_csr = (op.to_csr() @ v16.ravel()).reshape(op.shape)
        scale = np.max(np.abs(u_csr)) + 1.0
        tol = 8 * 2.0**-11 * scale
        assert np.max(np.abs(u_des - u_csr)) < tol
        assert np.max(np.abs(u_fun - u_csr)) < tol


class TestWaferVsCluster:
    def test_same_solution_different_machines(self):
        """Both targets solve the same preconditioned system; the wafer
        at fp16 accuracy, the cluster at fp64."""
        sys_ = momentum_system((10, 10, 10), reynolds=100.0, dt=0.05)
        wafer = WaferBiCGStab().solve(sys_, rtol=2e-3, maxiter=60)
        cluster = cluster_bicgstab(sys_.operator, sys_.b, nranks=4,
                                   rtol=1e-10, maxiter=300)
        assert wafer.converged and cluster.converged
        err = np.max(np.abs(wafer.x - cluster.x)) / (np.max(np.abs(cluster.x)) + 1e-30)
        assert err < 0.05  # fp16-level agreement on the solution

    def test_modeled_speedup_direction(self):
        """At comparable meshes the wafer's modeled per-iteration time is
        orders of magnitude below the cluster's."""
        wm = WaferPerfModel()
        cm = ClusterModel()
        t_wafer = wm.iteration_time((600, 595, 1536))
        t_cluster = cm.iteration_time((600, 600, 600), 16384)
        assert t_cluster / t_wafer > 100


class TestFig9Story:
    def test_mixed_tracks_then_plateaus(self):
        """Fig. 9: mixed tracks fp32 for the early iterations, then
        plateaus while fp32 keeps going (smaller surrogate system)."""
        sys_ = momentum_system((12, 24, 12), reynolds=200.0, dt=0.05)
        mixed = bicgstab(sys_.operator, sys_.b, precision="mixed",
                         rtol=0.0, maxiter=15, record_true_residual=True)
        single = bicgstab(sys_.operator, sys_.b, precision="single",
                          rtol=0.0, maxiter=15, record_true_residual=True)
        m = np.array(mixed.true_residuals)
        s = np.array(single.true_residuals)
        # early agreement (within 2x for the first few iterations)
        assert np.all(m[:3] < 2.5 * s[:3] + 1e-6)
        # late divergence: fp32 ends at least 10x lower
        assert s[-1] < m[-1] / 10
        # mixed plateau sits near fp16 precision, paper's 1e-2..1e-3 zone
        assert 1e-5 < m.min() < 5e-2

    def test_refinement_breaks_the_plateau(self):
        """Section VI.B's remedy, end to end on the same system class."""
        sys_ = momentum_system((8, 8, 8))
        direct = bicgstab(sys_.operator, sys_.b, precision="mixed",
                          rtol=0.0, maxiter=40)
        refined = refined_solve(sys_.operator, sys_.b, rtol=1e-9)
        assert refined.converged
        assert sys_.relative_residual(refined.x) < 1e-8 < sys_.relative_residual(direct.x)


class TestCfdProjectionPipeline:
    def test_solver_model_feeds_throughput(self):
        """The SIMPLE projection must use the calibrated solver model:
        doubling the solver's overhead must slow the projected rate."""
        slow_wafer = WaferPerfModel(compute_overhead=2.74)
        base = SimpleCostModel().timesteps_per_second()
        slow = SimpleCostModel(wafer=slow_wafer).timesteps_per_second()
        assert slow < base

    def test_full_story_numbers(self):
        """The paper's §VI.A narrative in one assertion chain."""
        sc = SimpleCostModel()
        lo, hi = sc.timesteps_per_second_range()
        assert lo < 100 < hi        # the 80-125 band overlaps our range
        assert sc.joule_speedup() > 200


class TestHeadlineEndToEnd:
    def test_scaled_headline_run(self):
        """A scaled-down headline run: same aspect ratio as 600x595x1536,
        wafer-mapped mixed solve converges to fp16 tolerance, and the
        model attaches the full-mesh numbers."""
        sys_ = momentum_system((30, 30, 76), reynolds=100.0, dt=0.05)
        res = WaferBiCGStab().solve(sys_, rtol=5e-3, maxiter=171)
        assert res.converged
        assert res.modeled_iteration_seconds < 28.1e-6  # smaller mesh, faster
        model = WaferPerfModel()
        assert model.iteration_time((600, 595, 1536)) == pytest.approx(28.1e-6, rel=0.01)
        assert model.pflops((600, 595, 1536)) == pytest.approx(0.86, rel=0.01)
