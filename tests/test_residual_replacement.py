"""Tests for the residual-replacement safeguard in BiCGStab.

In mixed precision the recurrence residual drifts below the true
residual (it can underflow to zero while the true residual plateaus —
the observable behind Fig. 9).  The van der Vorst/Sleijpen safeguard
periodically recomputes ``r = b - A x``; these tests verify it keeps
the recurrence honest and improves the attainable accuracy.
"""

import numpy as np
import pytest

from repro.problems import convection_diffusion_system, poisson_system
from repro.solver import bicgstab


@pytest.fixture(scope="module")
def drift_case():
    sys_ = convection_diffusion_system((6, 6, 6)).preconditioned()
    plain = bicgstab(sys_.operator, sys_.b, precision="mixed", rtol=0.0,
                     maxiter=40, record_true_residual=True)
    rr = bicgstab(sys_.operator, sys_.b, precision="mixed", rtol=0.0,
                  maxiter=40, record_true_residual=True,
                  residual_replacement_every=5)
    return sys_, plain, rr


class TestResidualReplacement:
    def test_recurrence_tracks_true_residual(self, drift_case):
        """With replacement, the final recurrence and true residuals
        agree; without, the recurrence underflows far below."""
        _, plain, rr = drift_case
        gap_rr = abs(rr.residuals[-1] - rr.true_residuals[-1])
        assert gap_rr < 0.5 * rr.true_residuals[-1]
        assert plain.residuals[-1] < 0.1 * plain.true_residuals[-1]

    def test_improves_attainable_accuracy(self, drift_case):
        """The safeguard lowers the true-residual plateau (the classic
        literature result)."""
        _, plain, rr = drift_case
        assert min(rr.true_residuals) < 0.7 * min(plain.true_residuals)

    def test_noop_in_fp64(self):
        """In fp64 the recurrence is already accurate: replacement must
        not change convergence materially."""
        sys_ = poisson_system((6, 6, 6), source="random")
        plain = bicgstab(sys_.operator, sys_.b, rtol=1e-10, maxiter=500)
        rr = bicgstab(sys_.operator, sys_.b, rtol=1e-10, maxiter=500,
                      residual_replacement_every=10)
        assert rr.converged and plain.converged
        assert abs(rr.iterations - plain.iterations) <= 5

    def test_solution_still_correct(self, drift_case):
        sys_, _, rr = drift_case
        assert sys_.relative_residual(rr.x) < 0.02

    def test_disabled_by_default(self):
        """The paper's implementation has no replacement; default off."""
        import inspect

        sig = inspect.signature(bicgstab)
        assert sig.parameters["residual_replacement_every"].default is None
