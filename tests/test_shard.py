"""Unit tests for :mod:`repro.wse.shard` — the planner and executor.

The bit-identity of sharded runs against the other engines lives in
``test_engine_equivalence.py``; this file pins the mechanics around
them: the strip planner's clamping and axis selection, the executor's
constructor validation and between-run controls (poke routing, skip
and clock bookkeeping), and the host-capacity probe the benchmark's
speedup gate keys on.
"""

import numpy as np
import pytest

from repro.wse import Fabric
from repro.wse.shard import (
    ShardedExecutor,
    ShardPlan,
    available_workers,
    plan_shards,
    run_sharded,
)


class TestPlanShards:
    def test_balanced_contiguous_strips(self):
        rects = plan_shards(10, 4, 4, axis="x")
        assert len(rects) == 4
        assert [r.x1 - r.x0 for r in rects] == [3, 3, 2, 2]
        assert all((r.y0, r.y1) == (0, 4) for r in rects)
        # Contiguous, in order, tiling the grid exactly.
        assert rects[0].x0 == 0 and rects[-1].x1 == 10
        for a, b in zip(rects, rects[1:]):
            assert a.x1 == b.x0
        assert sum(r.tiles for r in rects) == 40

    def test_default_axis_is_longer_dimension(self):
        assert all(r.y1 - r.y0 == 6 for r in plan_shards(8, 6, 2))   # x split
        assert all(r.x1 - r.x0 == 6 for r in plan_shards(6, 8, 2))   # y split
        # Ties split on x.
        assert all(r.y1 - r.y0 == 5 for r in plan_shards(5, 5, 2))

    def test_workers_clamped_to_split_extent(self):
        assert len(plan_shards(1, 1, 8)) == 1
        assert len(plan_shards(3, 1, 8, axis="x")) == 3
        assert len(plan_shards(4, 2, 8, axis="y")) == 2

    def test_contains(self):
        r = ShardPlan(1, 0, 3, 2)
        assert r.contains(1, 0) and r.contains(2, 1)
        assert not r.contains(3, 0) and not r.contains(0, 0)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError, match="workers"):
            plan_shards(4, 4, 0)
        with pytest.raises(ValueError, match="axis"):
            plan_shards(4, 4, 2, axis="z")


class TestAvailableWorkers:
    def test_positive_int(self):
        n = available_workers()
        assert isinstance(n, int) and n >= 1


class TestExecutorValidation:
    def test_lookahead_must_be_positive(self):
        with pytest.raises(ValueError, match="lookahead"):
            ShardedExecutor(Fabric(2, 2), workers=2, lookahead=0)

    def test_rejects_attached_sanitizer(self):
        f = Fabric(2, 2)
        f.attach_sanitizer()
        with pytest.raises(ValueError, match="sanitizer"):
            ShardedExecutor(f, workers=2)

    def test_rejects_attached_profiler(self):
        f = Fabric(2, 2)
        f.profiler = object()  # as the obs session's profiler hook does
        with pytest.raises(ValueError, match="profiler"):
            ShardedExecutor(f, workers=2)


class TestExecutorControls:
    def test_empty_fabric_runs_to_quiescence_like_active(self):
        mono = Fabric(3, 2)
        mono.engine = "active"
        cycles_mono = mono.run(max_cycles=100)
        f = Fabric(3, 2)
        f.engine = "active"
        assert run_sharded(f, workers=2, max_cycles=100) == cycles_mono
        assert f.cycle == mono.cycle

    def test_context_manager_and_idempotent_close(self):
        with ShardedExecutor(Fabric(4, 1), workers=2) as ex:
            assert ex.workers == 2
            assert all(p.is_alive() for p in ex._procs)
        assert all(not p.is_alive() for p in ex._procs)
        ex.close()  # second close is a no-op

    def test_skip_bookkeeping(self):
        f = Fabric(2, 2)
        with ShardedExecutor(f, workers=2) as ex:
            ex.skip(7)
            assert f.cycle == 7
            assert f.stats.cycles == 7
            assert f.stats.skipped_cycles == 7
            ex.skip(0)  # no-op, no broadcast round
            assert f.cycle == 7
            with pytest.raises(ValueError, match="negative"):
                ex.skip(-1)

    def test_align_clock_leaves_parent_bookkeeping_to_caller(self):
        f = Fabric(2, 2)
        with ShardedExecutor(f, workers=2) as ex:
            ex.align_clock(5)
            # Workers advanced; the parent fabric is the caller's job
            # (mirroring the monolithic direct ``fabric.cycle`` write).
            assert f.cycle == 0

    def test_poke_outside_fabric_raises(self):
        with ShardedExecutor(Fabric(2, 2), workers=2) as ex:
            with pytest.raises(ValueError, match="outside"):
                ex.poke([("flag", 5, 0, "go", True)])

    def test_worker_death_is_reported(self):
        with ShardedExecutor(Fabric(4, 1), workers=2) as ex:
            ex._procs[1].terminate()
            ex._procs[1].join()
            with pytest.raises(RuntimeError, match="died unexpectedly"):
                ex._broadcast(("skip", 1))


class TestHarvest:
    def test_router_words_written_back(self):
        """After a run + harvest the parent's per-router counters carry
        the workers' counts (equivalence tests pin the exact values)."""
        from repro.wse.allreduce import AllReduceEngine
        from repro.api import RunOptions

        eng = AllReduceEngine(4, 3, options=RunOptions(
            engine="sharded", workers=2))
        try:
            vals = np.arange(12, dtype=np.float64).reshape(3, 4)
            total, cycles = eng.reduce(vals)
        finally:
            eng.close()
        assert cycles > 0
        assert total == pytest.approx(vals.sum())
        per_router = sum(eng.fabric.router(x, y).words_moved
                        for y in range(3) for x in range(4))
        assert per_router == eng.fabric.total_words_moved > 0
