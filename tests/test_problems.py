"""Tests for the problem generators (Poisson, convection-diffusion,
MFIX-like momentum/pressure systems) and the LinearSystem container."""

import numpy as np
import pytest

from repro.problems import (
    LinearSystem,
    cavity_velocity_field,
    convection_diffusion7,
    convection_diffusion_system,
    fig9_momentum_system,
    momentum_system,
    poisson7,
    poisson_system,
    pressure_correction_system,
)

RNG = np.random.default_rng(23)


class TestPoisson:
    def test_spd(self):
        op = poisson7((4, 4, 4))
        A = (op.to_csr()).toarray()
        np.testing.assert_allclose(A, A.T)
        assert np.all(np.linalg.eigvalsh(A) > 0)

    def test_row_sums_interior_zero(self):
        """Interior rows of the Laplacian sum to zero."""
        op = poisson7((5, 5, 5))
        A = op.to_csr()
        rowsum = np.asarray(A.sum(axis=1)).reshape(op.shape)
        assert abs(rowsum[2, 2, 2]) < 1e-12
        assert rowsum[0, 0, 0] > 0  # boundary rows keep Dirichlet mass

    def test_anisotropic_spacing(self):
        op = poisson7((3, 3, 3), spacing=(1.0, 2.0, 4.0))
        assert op.coeffs["xp"][0, 0, 0] == pytest.approx(-1.0)
        assert op.coeffs["yp"][0, 0, 0] == pytest.approx(-0.25)
        assert op.coeffs["zp"][0, 0, 0] == pytest.approx(-0.0625)

    @pytest.mark.parametrize("source", ["sine", "random", "point"])
    def test_sources(self, source):
        sys_ = poisson_system((4, 4, 4), source=source)
        assert sys_.b.shape == (4, 4, 4)
        assert np.any(sys_.b != 0)

    def test_unknown_source(self):
        with pytest.raises(ValueError):
            poisson_system((4, 4, 4), source="nope")


class TestConvectionDiffusion:
    def test_nonsymmetric_with_velocity(self):
        op = convection_diffusion7((4, 4, 4), velocity=(2.0, 0, 0))
        A = op.to_csr()
        assert abs(A - A.T).max() > 1e-8

    def test_symmetric_without_velocity(self):
        op = convection_diffusion7((4, 4, 4), velocity=(0.0, 0.0, 0.0))
        A = op.to_csr()
        assert abs(A - A.T).max() < 1e-12

    def test_diagonally_dominant(self):
        """Upwinding guarantees weak diagonal dominance (M-matrix)."""
        op = convection_diffusion7(
            (5, 5, 5), velocity=(3.0, -2.0, 1.0), diffusivity=0.05,
            time_coefficient=0.1,
        )
        offsum = sum(
            np.abs(op.coeffs[n]) for n in ("xp", "xm", "yp", "ym", "zp", "zm")
        )
        assert np.all(op.coeffs["diag"] >= offsum - 1e-10)

    def test_offdiagonals_nonpositive(self):
        op = convection_diffusion7((4, 4, 4), velocity=(1.0, 1.0, 1.0))
        for name in ("xp", "xm", "yp", "ym", "zp", "zm"):
            assert np.all(op.coeffs[name] <= 1e-14)

    def test_time_coefficient_adds_to_diagonal(self):
        op0 = convection_diffusion7((3, 3, 3), time_coefficient=0.0)
        op1 = convection_diffusion7((3, 3, 3), time_coefficient=5.0)
        np.testing.assert_allclose(
            op1.coeffs["diag"] - op0.coeffs["diag"], 5.0
        )

    def test_peclet_scaling(self):
        sys_ = convection_diffusion_system((4, 4, 4), peclet=10.0, spacing=0.5,
                                           diffusivity=0.1)
        v = np.asarray(sys_.meta["velocity"])
        pe = np.linalg.norm(v) * 0.5 / 0.1
        assert pe == pytest.approx(10.0)

    def test_peclet_zero_velocity_raises(self):
        with pytest.raises(ValueError):
            convection_diffusion_system((4, 4, 4), velocity=(0, 0, 0), peclet=5.0)

    def test_variable_velocity_field(self):
        vel = np.zeros((3, 4, 4, 4))
        vel[0] = 1.0
        op = convection_diffusion7((4, 4, 4), velocity=vel)
        op.validate()


class TestCavityField:
    def test_shape_and_zero_w(self):
        u = cavity_velocity_field((8, 8, 4), lid_speed=2.0)
        assert u.shape == (3, 8, 8, 4)
        assert np.all(u[2] == 0.0)

    def test_peak_speed_matches_lid(self):
        u = cavity_velocity_field((16, 16, 2), lid_speed=1.5)
        assert np.abs(u[0]).max() == pytest.approx(1.5, rel=1e-12)

    def test_recirculation(self):
        """u changes sign between bottom and top halves (a vortex)."""
        u = cavity_velocity_field((16, 16, 1))
        ux = u[0][8, :, 0]
        assert ux[2] * ux[-3] < 0


class TestMomentumSystem:
    def test_preconditioned_unit_diagonal(self):
        sys_ = momentum_system((6, 6, 4))
        assert sys_.operator.has_unit_diagonal

    def test_unpreconditioned_keeps_diag(self):
        sys_ = momentum_system((6, 6, 4), preconditioned=False)
        assert not sys_.operator.has_unit_diagonal

    def test_fig9_shape(self):
        # Just verify the constructor wires the documented default shape
        # without building the full 4M-point system here.
        sys_ = fig9_momentum_system(shape=(10, 40, 10))
        assert sys_.operator.shape == (10, 40, 10)
        assert not sys_.meta.get("spd", True)

    def test_solvable(self):
        from repro.solver import bicgstab

        sys_ = momentum_system((6, 6, 6), reynolds=50.0, dt=0.02)
        res = bicgstab(sys_.operator, sys_.b, rtol=1e-10, maxiter=200)
        assert res.converged


class TestPressureSystem:
    def test_symmetric(self):
        sys_ = pressure_correction_system((5, 5, 5), preconditioned=False)
        A = sys_.operator.to_csr()
        assert abs(A - A.T).max() < 1e-10

    def test_compatible_rhs(self):
        sys_ = pressure_correction_system((4, 4, 4), preconditioned=False)
        assert abs(sys_.b.sum()) < 1e-8 * np.abs(sys_.b).sum()

    def test_solvable(self):
        from repro.solver import bicgstab

        sys_ = pressure_correction_system((5, 5, 5))
        res = bicgstab(sys_.operator, sys_.b, rtol=1e-6, maxiter=800)
        assert res.final_residual < 1e-4


class TestLinearSystem:
    def test_residual_of_exact_solution(self):
        sys_ = poisson_system((4, 4, 4)).manufactured()
        assert sys_.relative_residual(sys_.x_true) < 1e-12

    def test_preconditioned_preserves_solution(self):
        sys_ = momentum_system((4, 4, 4), preconditioned=False).manufactured()
        pre = sys_.preconditioned()
        assert pre.relative_residual(sys_.x_true) < 1e-10

    def test_residual_norm_positive_for_wrong_x(self):
        sys_ = poisson_system((4, 4, 4))
        assert sys_.residual_norm(np.zeros(sys_.shape)) > 0

    def test_n_and_shape(self):
        sys_ = poisson_system((3, 4, 5))
        assert sys_.n == 60
        assert sys_.shape == (3, 4, 5)
