"""Tests for the 3D SIMPLE solver (the full Algorithm 2 component loop)."""

import numpy as np
import pytest

from repro.cfd import FlowField3D, OpCounter, SimpleSolver3D, StaggeredMesh3D

RNG = np.random.default_rng(73)


class TestMesh3D:
    def test_shapes(self):
        m = StaggeredMesh3D(4, 5, 6)
        assert m.u_shape == (5, 5, 6)
        assert m.v_shape == (4, 6, 6)
        assert m.w_shape == (4, 5, 7)
        assert m.n_cells == 120

    def test_spacing(self):
        m = StaggeredMesh3D(10, 10, 20, 1.0, 1.0, 2.0)
        assert m.dz == pytest.approx(0.1)

    def test_too_small(self):
        with pytest.raises(ValueError):
            StaggeredMesh3D(2, 5, 5)


class TestFlowField3D:
    def test_initial_state_divergence_free(self):
        f = FlowField3D(StaggeredMesh3D(4, 4, 4))
        assert f.continuity_residual() == 0.0

    def test_divergence_of_linear_u(self):
        m = StaggeredMesh3D(4, 4, 4)
        f = FlowField3D(m)
        f.u[:] = np.arange(5)[:, None, None]
        np.testing.assert_allclose(f.divergence(), m.dy * m.dz)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            FlowField3D(StaggeredMesh3D(4, 4, 4), u=np.zeros((2, 2, 2)))

    def test_copy_deep(self):
        f = FlowField3D(StaggeredMesh3D(4, 4, 4))
        g = f.copy()
        g.w[0, 0, 0] = 1.0
        assert f.w[0, 0, 0] == 0.0

    def test_kinetic_energy_zero_at_rest(self):
        f = FlowField3D(StaggeredMesh3D(4, 4, 4))
        assert f.kinetic_energy() == 0.0


class TestAssembly3D:
    def _solver(self, n=6):
        return SimpleSolver3D(StaggeredMesh3D(n, n, n), viscosity=0.02)

    def test_momentum_systems_are_valid_stencils(self):
        s = self._solver()
        f = FlowField3D(s.mesh)
        f.u[1:-1] = 0.05 * RNG.standard_normal(s.mesh.u_interior)
        f.v[:, 1:-1] = 0.05 * RNG.standard_normal(s.mesh.v_interior)
        f.w[:, :, 1:-1] = 0.05 * RNG.standard_normal(s.mesh.w_interior)
        for A, b, d in (s._u_system(f), s._v_system(f), s._w_system(f)):
            A.validate()
            assert np.all(A.coeffs["diag"] > 0)

    def test_momentum_m_matrix(self):
        """Upwind + outflow clamp keeps weak diagonal dominance."""
        s = self._solver()
        f = FlowField3D(s.mesh)
        f.u[1:-1] = 0.1 * RNG.standard_normal(s.mesh.u_interior)
        A, _, _ = s._u_system(f)
        offsum = sum(np.abs(A.coeffs[n]) for n in
                     ("xp", "xm", "yp", "ym", "zp", "zm"))
        assert np.all(A.coeffs["diag"] >= offsum - 1e-12)

    def test_lid_enters_u_only(self):
        s0 = SimpleSolver3D(StaggeredMesh3D(6, 6, 6), u_lid=0.0)
        s1 = SimpleSolver3D(StaggeredMesh3D(6, 6, 6), u_lid=1.0)
        f = FlowField3D(s0.mesh)
        _, bu0, _ = s0._u_system(f)
        _, bu1, _ = s1._u_system(f)
        diff = bu1 - bu0
        assert np.all(diff[:, -1, :] > 0)
        assert np.allclose(diff[:, :-1, :], 0)
        _, bw0, _ = s0._w_system(f)
        _, bw1, _ = s1._w_system(f)
        np.testing.assert_allclose(bw0, bw1)  # lid does not force w

    def test_pressure_system_symmetric_except_pin(self):
        s = self._solver(5)
        f = FlowField3D(s.mesh)
        _, _, d_u = s._u_system(f)
        _, _, d_v = s._v_system(f)
        _, _, d_w = s._w_system(f)
        A, _ = s._pressure_system(f, d_u, d_v, d_w)
        M = A.to_csr().toarray()
        sub = M[1:, 1:]
        np.testing.assert_allclose(sub, sub.T, atol=1e-12)

    def test_d_zero_on_boundary_faces(self):
        s = self._solver()
        f = FlowField3D(s.mesh)
        _, _, d_u = s._u_system(f)
        assert np.all(d_u[0] == 0) and np.all(d_u[-1] == 0)
        _, _, d_w = s._w_system(f)
        assert np.all(d_w[:, :, 0] == 0) and np.all(d_w[:, :, -1] == 0)


class TestCavity3D:
    @pytest.fixture(scope="class")
    def solution(self):
        solver = SimpleSolver3D(StaggeredMesh3D(10, 10, 10), viscosity=0.01)
        return solver.solve(max_outer=150, tol=5e-4)

    def test_converges(self, solution):
        assert solution.converged

    def test_mass_conserved(self, solution):
        assert solution.field.continuity_residual() < 1e-3

    def test_lid_driven_vortex(self, solution):
        f = solution.field
        i, k = 5, 5
        assert f.u[i, -1, k] > 0.3      # dragged along under the lid
        assert f.u[i, f.mesh.ny // 2, k] < -0.02  # return flow below

    def test_midplane_symmetry(self, solution):
        """The cavity is symmetric in z about the mid-plane: u mirrors.
        (The corner pressure pin and finite convergence leave ~1e-3
        asymmetry; the flow scale is O(1).)"""
        f = solution.field
        u = f.u
        np.testing.assert_allclose(u, u[:, :, ::-1], atol=5e-3)

    def test_w_antisymmetric_in_z(self, solution):
        w = solution.field.w
        np.testing.assert_allclose(w, -w[:, :, ::-1], atol=5e-3)

    def test_no_flow_through_walls(self, solution):
        f = solution.field
        assert np.all(f.u[0] == 0) and np.all(f.u[-1] == 0)
        assert np.all(f.v[:, 0] == 0) and np.all(f.v[:, -1] == 0)
        assert np.all(f.w[:, :, 0] == 0) and np.all(f.w[:, :, -1] == 0)

    def test_produces_wafer_ready_systems(self):
        """The 3D momentum systems are exactly what the wafer solver
        consumes: 7-point, preconditionable, solvable in mixed."""
        from repro.solver import bicgstab

        s = SimpleSolver3D(StaggeredMesh3D(8, 8, 8), viscosity=0.02)
        f = FlowField3D(s.mesh)
        f.u[1:-1] = 0.05 * RNG.standard_normal(s.mesh.u_interior)
        A, b, _ = s._u_system(f)
        pre, bp, _ = A.jacobi_precondition(b)
        res = bicgstab(pre, bp, precision="mixed", rtol=5e-3, maxiter=40)
        assert res.converged

    def test_opcounter_integration(self):
        s = SimpleSolver3D(StaggeredMesh3D(6, 6, 6))
        s.counter = OpCounter(enabled=True)
        s.iterate(FlowField3D(s.mesh))
        rep = s.counter.report()
        assert rep["Momentum"]["cycles"] > rep["Field Update"]["cycles"]
