"""Tests for the model validator and convergence analytics."""

import numpy as np
import pytest

from repro.analysis import (
    convergence_rate,
    detect_plateau,
    estimate_extreme_eigenvalues,
    iterations_to_tolerance,
)
from repro.perfmodel import ModelValidator
from repro.problems import poisson7, stretched_system
from repro.solver import bicgstab


class TestModelValidator:
    @pytest.fixture(scope="class")
    def outcome(self):
        return ModelValidator().validate()

    def test_spmv_within_envelope(self, outcome):
        """Section V methodology: the DES must validate the model."""
        assert outcome["spmv_ok"]
        for p in outcome["spmv"]:
            assert p.lower_bound <= p.des_cycles <= p.model_budget

    def test_spmv_cycles_linear_in_z(self, outcome):
        """The DES cycles track Z almost exactly (fabric-limited)."""
        pts = outcome["spmv"]
        for p in pts:
            assert p.des_cycles - p.z < 10

    def test_allreduce_tracks_model(self, outcome):
        assert outcome["allreduce_ok"]
        for p in outcome["allreduce"]:
            assert p.relative_error < 0.3

    def test_allreduce_error_shrinks_with_size(self, outcome):
        errs = [p.relative_error for p in outcome["allreduce"]]
        assert errs[-1] < errs[0]


class TestConvergenceRate:
    def test_geometric_series(self):
        r = [1.0 * 0.3**k for k in range(8)]
        assert convergence_rate(r) == pytest.approx(0.3, rel=1e-9)

    def test_stagnation_detected(self):
        r = [1.0, 0.5, 0.5, 0.5, 0.5, 0.5]
        assert convergence_rate(r, tail=3) >= 0.99

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            convergence_rate([1.0])

    def test_real_solver_history(self):
        from repro.problems import poisson_system

        sys_ = poisson_system((6, 6, 6), source="random")
        res = bicgstab(sys_.operator, sys_.b, rtol=1e-10, maxiter=500)
        rate = convergence_rate(res.residuals)
        assert 0.0 < rate < 1.0


class TestIterationsToTolerance:
    def test_already_achieved(self):
        assert iterations_to_tolerance([1.0, 1e-3, 1e-7], 1e-6) == 3

    def test_extrapolated(self):
        r = [1.0 * 0.1**k for k in range(4)]  # reaches 1e-3
        n = iterations_to_tolerance(r, 1e-8)
        assert n == 9  # 0.1 per iteration: 1e-8 at iteration 9

    def test_stagnant_returns_none(self):
        assert iterations_to_tolerance([0.9] * 6, 1e-8) is None

    def test_beyond_cap_returns_none(self):
        r = [1.0, 0.999999]
        assert iterations_to_tolerance(r, 1e-30, max_extrapolation=100) is None


class TestDetectPlateau:
    def test_fig9_style_history(self):
        """Mixed-precision history: drops then flattens near 1e-2."""
        r = [0.5, 0.1, 0.03, 0.012, 0.011, 0.0105, 0.0103, 0.0102, 0.0101]
        p = detect_plateau(r)
        assert p is not None and 3 <= p <= 5

    def test_no_plateau_in_clean_convergence(self):
        r = [1.0 * 0.3**k for k in range(10)]
        assert detect_plateau(r) is None

    def test_real_mixed_solve_plateaus(self):
        from repro.problems import momentum_system

        sys_ = momentum_system((8, 8, 8))
        res = bicgstab(sys_.operator, sys_.b, precision="mixed", rtol=0.0,
                       maxiter=25, record_true_residual=True)
        assert detect_plateau(res.true_residuals, window=2) is not None


class TestEigenvalueEstimates:
    def test_poisson_largest_eigenvalue(self):
        """1D-factorizable: lambda_max < 12/h^2 for the 7-point Laplacian."""
        op = poisson7((6, 6, 6), spacing=1.0)
        lam, sigma_min = estimate_extreme_eigenvalues(op, iterations=150)
        assert 6.0 < lam < 12.0
        assert sigma_min >= 0.0

    def test_identity(self):
        from repro.problems import Stencil7

        op = Stencil7.identity((4, 4, 4))
        lam, _ = estimate_extreme_eigenvalues(op, iterations=30)
        assert lam == pytest.approx(1.0, rel=1e-6)

    def test_stretching_worsens_conditioning(self):
        flat = stretched_system((8, 8, 8), ratio=1.0).preconditioned()
        graded = stretched_system((8, 8, 8), ratio=1.6).preconditioned()
        lam_f, _ = estimate_extreme_eigenvalues(flat.operator, iterations=100)
        lam_g, _ = estimate_extreme_eigenvalues(graded.operator, iterations=100)
        # After Jacobi scaling, both have O(1) norms; the graded one's
        # spread shows up as a larger extreme eigenvalue.
        assert lam_g >= lam_f * 0.9  # not catastrophically different
