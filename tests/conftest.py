"""Test-suite configuration.

Hypothesis runs with a fixed profile: no per-example deadline (the
discrete simulations have legitimately variable step costs) and
deterministic derandomized generation so CI failures reproduce locally.
"""

from hypothesis import settings

settings.register_profile("repro", deadline=None, derandomize=True)
settings.load_profile("repro")
