"""Tests for the communication-reduced (grouped-reduction) BiCGStab."""

import numpy as np
import pytest

from repro.problems import convection_diffusion_system, poisson_system
from repro.solver import bicgstab, bicgstab_grouped


class TestNumericalIdentity:
    def test_identical_to_standard_fp64(self):
        """Grouping only changes transport, not arithmetic: iterate
        histories must match the standard solver exactly."""
        sys_ = convection_diffusion_system((8, 8, 8))
        a = bicgstab(sys_.operator, sys_.b, rtol=1e-10, maxiter=200)
        g = bicgstab_grouped(sys_.operator, sys_.b, rtol=1e-10, maxiter=200)
        assert g.converged == a.converged
        assert g.iterations == a.iterations
        np.testing.assert_array_equal(g.x, a.x)
        np.testing.assert_allclose(g.residuals, a.residuals, rtol=1e-14)

    def test_identical_in_mixed_precision(self):
        sys_ = poisson_system((6, 6, 8), source="random").preconditioned()
        a = bicgstab(sys_.operator, sys_.b, precision="mixed", rtol=1e-2,
                     maxiter=50)
        g = bicgstab_grouped(sys_.operator, sys_.b, precision="mixed",
                             rtol=1e-2, maxiter=50)
        assert g.iterations == a.iterations
        np.testing.assert_array_equal(g.x, a.x)


class TestSynchronizationAccounting:
    def test_three_syncs_per_iteration(self):
        sys_ = convection_diffusion_system((8, 8, 8))
        g = bicgstab_grouped(sys_.operator, sys_.b, rtol=1e-10, maxiter=200)
        # 2 setup groups (bnorm; rho+init-check) + 3 per iteration.
        assert g.info["synchronizations"] == 2 + 3 * g.iterations
        assert g.info["synchronizations_per_iteration"] == pytest.approx(3.0)

    def test_five_scalars_per_iteration(self):
        sys_ = convection_diffusion_system((8, 8, 8))
        g = bicgstab_grouped(sys_.operator, sys_.b, rtol=1e-10, maxiter=200)
        # setup: 1 + 2 scalars; per iteration: 1 + 2 + 2.
        assert g.info["scalars_reduced"] == 3 + 5 * g.iterations

    def test_custom_grouped_dot_injected(self):
        sys_ = poisson_system((6, 6, 6), source="random")
        groups = []

        def spy(pairs):
            groups.append(len(pairs))
            return [float(np.dot(u.ravel().astype(np.float64),
                                 v.ravel().astype(np.float64)))
                    for u, v in pairs]

        g = bicgstab_grouped(sys_.operator, sys_.b, rtol=1e-8,
                             maxiter=100, grouped_dot=spy)
        assert g.converged
        # group sizes cycle 1, 2, 2 after the two setup groups (1 then 2)
        assert groups[0] == 1 and groups[1] == 2
        assert groups[2:][:3] == [1, 2, 2]

    def test_zero_rhs(self):
        from repro.problems import Stencil7

        op = Stencil7.identity((3, 3, 3))
        g = bicgstab_grouped(op, np.zeros(op.shape))
        assert g.converged and g.iterations == 0


class TestScheduleModel:
    def test_batched_schedule_faster(self):
        from repro.perfmodel import WaferPerfModel

        m = WaferPerfModel()
        mesh = (600, 595, 256)
        t4 = m.iteration_time_with_schedule(mesh, (1, 1, 1, 1))
        t3 = m.iteration_time_with_schedule(mesh, (1, 2, 2))
        assert t3 < t4

    def test_default_schedule_matches_iteration_time(self):
        from repro.perfmodel import HEADLINE_MESH, WaferPerfModel

        m = WaferPerfModel()
        assert m.iteration_time_with_schedule(
            HEADLINE_MESH, (1, 1, 1, 1)
        ) == pytest.approx(m.iteration_time(HEADLINE_MESH))

    def test_gain_largest_at_small_z(self):
        from repro.perfmodel import WaferPerfModel

        m = WaferPerfModel()

        def gain(z):
            mesh = (600, 595, z)
            return m.iteration_time_with_schedule(mesh, (1, 1, 1, 1)) / \
                m.iteration_time_with_schedule(mesh, (1, 2, 2))

        assert gain(64) > gain(1536) > 1.0

    def test_batched_scalar_cost_is_marginal(self):
        from repro.perfmodel import WaferPerfModel

        m = WaferPerfModel()
        mesh = (600, 595, 1536)
        single = m.collective_cycles(mesh, (1,))
        double = m.collective_cycles(mesh, (2,))
        assert double == single + 1  # one extra pipelined word
