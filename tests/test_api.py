"""Tests for :mod:`repro.api` — RunOptions, Session, and the shims.

Three contracts live here: the :class:`RunOptions` value object rejects
every inconsistent combination at construction (so runners never have
to re-validate), the legacy runner keywords keep working but warn with
the documented removal schedule, and the shared CLI fragment spells
``--engine``/``--workers``/``--json`` identically for every subcommand.
"""

import argparse

import numpy as np
import pytest

from repro.api import (
    ENGINES,
    AllReduce,
    Axpy,
    Dot,
    RunOptions,
    Session,
    Spmv3D,
    add_engine_arguments,
    coerce_options,
    options_from_args,
)


class TestRunOptions:
    def test_defaults(self):
        opts = RunOptions()
        assert (opts.engine, opts.workers) == ("active", 1)
        assert not opts.sanitize and not opts.analyze and not opts.profile
        assert opts.obs is None

    def test_engine_must_be_known(self):
        assert ENGINES == ("reference", "active", "replay", "sharded")
        with pytest.raises(ValueError, match="engine"):
            RunOptions(engine="turbo")

    @pytest.mark.parametrize("workers", [0, -1, 1.5, "2"])
    def test_workers_must_be_positive_int(self, workers):
        with pytest.raises(ValueError, match="workers"):
            RunOptions(engine="sharded", workers=workers)

    def test_workers_above_one_require_sharded(self):
        with pytest.raises(ValueError, match="requires engine='sharded'"):
            RunOptions(engine="active", workers=2)
        assert RunOptions(engine="sharded", workers=4).workers == 4

    def test_sharded_rejects_sanitize_and_profile(self):
        with pytest.raises(ValueError, match="sanitize"):
            RunOptions(engine="sharded", sanitize=True)
        with pytest.raises(ValueError, match="profile"):
            RunOptions(engine="sharded", profile=True, obs=object())

    def test_profile_requires_obs(self):
        with pytest.raises(ValueError, match="obs"):
            RunOptions(profile=True)
        assert RunOptions(profile=True, obs=object()).profile

    def test_frozen(self):
        with pytest.raises(AttributeError):
            RunOptions().engine = "replay"

    def test_replace_revalidates(self):
        opts = RunOptions(engine="sharded", workers=4)
        assert opts.replace(workers=2) == RunOptions(engine="sharded",
                                                     workers=2)
        assert opts.workers == 4  # original untouched
        with pytest.raises(ValueError):
            opts.replace(engine="active")  # workers=4 now inconsistent


class TestCoerceOptions:
    def test_no_arguments_yields_defaults(self):
        assert coerce_options(None, caller="x") == RunOptions()

    def test_options_passed_through_unchanged(self):
        opts = RunOptions(engine="replay")
        assert coerce_options(opts, caller="x") is opts

    def test_legacy_keyword_warns_with_schedule(self):
        with pytest.warns(DeprecationWarning,
                          match=r"myrunner.*engine.*PR 12"):
            opts = coerce_options(None, caller="myrunner", engine="replay")
        assert opts == RunOptions(engine="replay")

    def test_none_valued_legacy_keywords_are_silent(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            opts = coerce_options(None, caller="x", engine=None, obs=None)
        assert opts == RunOptions()

    def test_both_spellings_is_an_error(self):
        with pytest.raises(TypeError, match="not both"):
            coerce_options(RunOptions(), caller="x", engine="active")

    def test_unknown_legacy_keyword_is_an_error(self):
        with pytest.raises(TypeError, match="unknown option"):
            coerce_options(None, caller="x", engin="active")

    def test_options_type_checked(self):
        with pytest.raises(TypeError, match="RunOptions"):
            coerce_options({"engine": "active"}, caller="x")


class TestRunnerShims:
    """The pre-PR keyword spellings still work, warning once."""

    def test_run_spmv_des_engine_kwarg(self):
        from repro.kernels import run_spmv_des
        from repro.problems import Stencil7

        op, _, _ = Stencil7.from_random(
            (2, 2, 4), rng=np.random.default_rng(0)).jacobi_precondition()
        v = np.ones(op.shape)
        with pytest.warns(DeprecationWarning, match="run_spmv_des"):
            u_old, c_old = run_spmv_des(op, v, engine="active")
        u_new, c_new = run_spmv_des(op, v, options=RunOptions())
        assert c_old == c_new
        np.testing.assert_array_equal(u_old, u_new)

    def test_allreduce_engine_kwarg(self):
        from repro.wse.allreduce import AllReduceEngine

        with pytest.warns(DeprecationWarning, match="AllReduceEngine"):
            eng = AllReduceEngine(2, 2, engine="active")
        eng.close()

    def test_bicgstab_engine_kwarg(self):
        from repro.kernels.bicgstab_des import DESBiCGStab
        from repro.problems import momentum_system

        system = momentum_system((2, 2, 4), reynolds=50.0, dt=0.02)
        with pytest.warns(DeprecationWarning, match="DESBiCGStab"):
            solver = DESBiCGStab(system.operator, engine="active")
        assert solver.options == RunOptions()
        solver.close()


class TestSession:
    def test_default_options(self):
        assert Session().options == RunOptions()
        with pytest.raises(TypeError):
            Session(options={"engine": "active"})

    def test_run_rejects_non_options_override(self):
        with pytest.raises(TypeError):
            Session().run(Axpy(1.0, np.ones(4), np.ones(4)),
                          options="active")

    def test_facade_matches_direct_runners(self):
        from repro.kernels import run_dot_des
        from repro.problems import Stencil7

        x = np.random.default_rng(1).random(9).astype(np.float16)
        y = np.random.default_rng(2).random(9).astype(np.float16)
        session = Session()
        d_facade, c_facade = session.run(Dot(x, y))
        d_direct, c_direct = run_dot_des(x, y, options=RunOptions())
        assert (d_facade, c_facade) == (d_direct, c_direct)

        op, _, _ = Stencil7.from_random(
            (2, 2, 4), rng=np.random.default_rng(3)).jacobi_precondition()
        v = 0.1 * np.random.default_rng(4).standard_normal(op.shape)
        u_act, c_act = session.run(Spmv3D(op, v))
        u_sh, c_sh = session.run(
            Spmv3D(op, v), options=RunOptions(engine="sharded", workers=2))
        assert c_sh == c_act
        np.testing.assert_array_equal(u_sh, u_act)

    def test_session_pins_engine_across_programs(self):
        session = Session(RunOptions(engine="sharded", workers=2))
        vals = np.arange(6, dtype=np.float64).reshape(2, 3)
        total, cycles = session.run(AllReduce(vals))
        assert total == pytest.approx(vals.sum())
        assert cycles > 0


class TestCliFragment:
    def _parser(self, **kw):
        parser = argparse.ArgumentParser()
        add_engine_arguments(parser, **kw)
        return parser

    def test_engine_and_workers_spelling(self):
        args = self._parser().parse_args(
            ["--engine", "sharded", "--workers", "4"])
        opts = options_from_args(args)
        assert opts == RunOptions(engine="sharded", workers=4)

    def test_workers_ignored_without_sharded(self):
        args = self._parser().parse_args(["--engine", "active",
                                          "--workers", "4"])
        assert options_from_args(args) == RunOptions()

    def test_unknown_engine_rejected_at_parse_time(self):
        with pytest.raises(SystemExit):
            self._parser().parse_args(["--engine", "turbo"])

    def test_extra_choices(self):
        parser = self._parser(extra_choices=("both", "all"))
        assert parser.parse_args(["--engine", "all"]).engine == "all"

    def test_json_flag_opt_in(self):
        parser = self._parser(json_flag=True)
        assert parser.parse_args(["--json"]).json is True
        with pytest.raises(SystemExit):
            self._parser().parse_args(["--json"])

    def test_engine_and_workers_opt_out(self):
        parser = self._parser(engine=False, workers=False, json_flag=True)
        args = parser.parse_args(["--json"])
        assert not hasattr(args, "engine") and not hasattr(args, "workers")
        # options_from_args degrades to defaults for such subcommands.
        assert options_from_args(args) == RunOptions()

    def test_overrides(self):
        args = self._parser().parse_args(["--engine", "replay"])
        opts = options_from_args(args, analyze=True)
        assert opts == RunOptions(engine="replay", analyze=True)
