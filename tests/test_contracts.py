"""Contract verification: the DES engine held to the static contracts.

Three families:

* **verification** — every shipped program (both SpMV mappings, both
  sum-task configurations, the BLAS kernels, the AllReduce, and a full
  BiCGStab iteration) runs under the engine with a metrics registry
  attached and matches its ``StaticContract`` exactly on words and at
  least on cycles;
* **cross-engine exactness** — the verification result is bit-identical
  under ``engine="active"`` and ``engine="reference"``: same word
  counts, same cycle counts, same slack;
* **serialization** — ``StaticContract`` round-trips through JSON
  losslessly.
"""

import json

import numpy as np
import pytest

from repro.wse.analyze.contracts import StaticContract, compute_contract
from repro.wse.analyze.verify_contracts import verify_contracts


@pytest.fixture(scope="module")
def active_checks():
    return verify_contracts("active")


@pytest.fixture(scope="module")
def reference_checks():
    return verify_contracts("reference")


class TestVerifyContracts:
    def test_all_ok_under_active_engine(self, active_checks):
        for check in active_checks:
            assert check.ok, check.summary()

    def test_all_ok_under_reference_engine(self, reference_checks):
        for check in reference_checks:
            assert check.ok, check.summary()

    def test_exact_word_agreement(self, active_checks):
        """Words are an equality, not a bound: observed == contract on
        the fabric total, on every router, and in the metrics registry."""
        for check in active_checks:
            assert check.observed_words == check.expected_words, check.summary()
            assert check.metrics_words == check.expected_words, check.summary()
            assert check.router_mismatches == (), check.summary()

    def test_cycle_bound_is_a_lower_bound(self, active_checks):
        for check in active_checks:
            assert check.observed_cycles >= check.cycle_lower_bound
            assert check.slack >= 0

    def test_covers_required_program_families(self, active_checks):
        names = [c.program for c in active_checks]
        for family in ("spmv3d", "spmv2d", "axpy", "dot", "allreduce",
                       "bicgstab"):
            assert any(family in n for n in names), names

    def test_cdg_acyclic_everywhere(self, active_checks):
        for check in active_checks:
            assert check.cdg_clean, check.program

    def test_cross_engine_identical(self, active_checks, reference_checks):
        """The two stepping engines verify *identically*: same programs,
        same word counts, same cycle counts, same slack."""
        assert [c.key() for c in active_checks] \
            == [c.key() for c in reference_checks]

    def test_bicgstab_iteration_verified(self, active_checks):
        """One full BiCGStab iteration holds both persistent fabrics
        (SpMV with its warm-up run, AllReduce) to runs x contract."""
        bicg = [c for c in active_checks if c.program.startswith("bicgstab")]
        assert len(bicg) == 2
        for check in bicg:
            assert check.runs > 1  # genuinely multiple kernel runs
            assert check.ok, check.summary()


class TestVerifyCli:
    def test_report_text_ends_ok(self):
        from repro.wse.analyze.verify_contracts import verify_report_text

        text = verify_report_text("active")
        assert text.endswith("VERIFY OK")
        assert "slack" in text

    def test_verify_main_both_engines(self, capsys):
        from repro.wse.analyze.verify_contracts import verify_main

        assert verify_main(["--engine", "both"]) == 0
        out = capsys.readouterr().out
        assert "engine=active" in out and "engine=reference" in out

    def test_cli_dispatch(self, capsys):
        from repro.cli import main

        assert main(["verify-contracts", "--engine", "active"]) == 0
        assert "VERIFY OK" in capsys.readouterr().out

    def test_report_registry_entry(self):
        from repro.analysis.reports import REPORTS

        assert "verify-contracts" in REPORTS


class TestStaticContractSerialization:
    def _contract(self):
        from repro.kernels.spmv3d import build_spmv_fabric
        from repro.problems import Stencil7

        op, _b, _d = Stencil7.from_random((2, 2, 4)).jacobi_precondition()
        fabric, _programs = build_spmv_fabric(op, np.zeros(op.shape))
        return fabric.static_contract

    def test_json_round_trip(self):
        contract = self._contract()
        assert contract is not None and contract.total_words > 0
        again = StaticContract.from_json(contract.to_json())
        assert again == contract

    def test_json_is_plain_data(self):
        payload = json.loads(self._contract().to_json())
        assert set(payload) == {"total_words", "router_words", "link_words",
                                "cycle_lower_bound", "cdg_cycles"}

    def test_link_words_sum_to_router_words(self):
        contract = self._contract()
        by_router = {}
        for (x, y, _ch, _out), words in contract.link_words_map().items():
            by_router[(x, y)] = by_router.get((x, y), 0) + words
        assert by_router == contract.router_words_map()

    def test_cyclic_program_contract_records_cycle(self):
        from repro.wse import CS1, Core, Fabric, Port

        f = Fabric(2, 1)
        for x in range(2):
            f.attach_core(x, 0, Core(x, 0, CS1))
        f.router(0, 0).set_route(7, Port.EAST, (Port.EAST,))
        f.router(1, 0).set_route(7, Port.WEST, (Port.WEST,))
        contract = compute_contract(f)
        assert len(contract.cdg_cycles) == 1
        assert contract.total_words == 0  # no sound count on a cyclic channel
        again = StaticContract.from_json(contract.to_json())
        assert again == contract
