"""Tests for the functional wafer BiCGStab (mapping + precision + timing)."""

import numpy as np
import pytest

from repro.perfmodel import WaferPerfModel
from repro.problems import (
    convection_diffusion_system,
    momentum_system,
    poisson_system,
)
from repro.solver import WaferBiCGStab, bicgstab
from repro.solver.wafer_bicgstab import fabric_tree_dot, fabric_tree_sum_f32
from repro.precision import tree_sum

RNG = np.random.default_rng(53)


class TestFabricTreeDot:
    def test_matches_fp64_dot(self):
        x = RNG.standard_normal((6, 6, 8)).astype(np.float16)
        got = fabric_tree_dot(x, x)
        ref = float(np.dot(x.astype(np.float64).ravel(), x.astype(np.float64).ravel()))
        assert got == pytest.approx(ref, rel=1e-4)

    def test_tree_sum_matches_exact_order_on_small(self):
        partial = RNG.standard_normal((5, 4)).astype(np.float32)
        fast = float(fabric_tree_sum_f32(partial))
        # tree_sum expects (rows=Y, cols=X); partial here is (X, Y).
        exact = tree_sum(partial.T, dtype=np.float32)
        assert fast == pytest.approx(exact, rel=1e-5)

    def test_fp32_accumulation_beats_fp16(self):
        n = 4096
        x = np.ones((4, 4, n // 16), dtype=np.float16)
        got = fabric_tree_dot(x, x)
        assert got == pytest.approx(16 * (n // 16), rel=1e-6)


class TestWaferSolve:
    def test_solves_momentum_system(self):
        sys_ = momentum_system((12, 12, 16), reynolds=100.0, dt=0.05)
        res = WaferBiCGStab().solve(sys_, rtol=2e-3, maxiter=100)
        assert res.converged
        assert sys_.relative_residual(res.x) < 0.05

    def test_auto_preconditions(self):
        sys_ = convection_diffusion_system((8, 8, 8))  # diag != 1
        res = WaferBiCGStab().solve(sys_, rtol=5e-3, maxiter=100)
        assert res.converged

    def test_bare_operator_and_rhs(self):
        sys_ = poisson_system((8, 8, 8))
        res = WaferBiCGStab().solve(sys_.operator, sys_.b, rtol=5e-3, maxiter=150)
        assert res.final_residual < 5e-2

    def test_bare_operator_requires_rhs(self):
        sys_ = poisson_system((4, 4, 4))
        with pytest.raises(ValueError, match="b is required"):
            WaferBiCGStab().solve(sys_.operator)

    def test_matches_reference_mixed_solver(self):
        """Functional wafer solve == reference bicgstab in mixed mode with
        the fabric dot injected: identical arithmetic, identical history."""
        sys_ = momentum_system((8, 8, 8), reynolds=50.0, dt=0.05)
        wres = WaferBiCGStab().solve(sys_, rtol=1e-3, maxiter=30)
        ref = bicgstab(
            sys_.operator, sys_.b, precision="mixed", rtol=1e-3, maxiter=30,
            dot_fn=fabric_tree_dot,
        )
        assert wres.iterations == ref.iterations
        np.testing.assert_array_equal(wres.x, ref.x)
        np.testing.assert_array_equal(wres.residuals, ref.residuals)

    def test_single_precision_mode(self):
        sys_ = momentum_system((8, 8, 8))
        res = WaferBiCGStab(precision="single").solve(sys_, rtol=1e-6, maxiter=200)
        assert res.final_residual < 1e-4
        assert res.precision == "single"


class TestFeasibilityChecks:
    def test_mesh_too_wide_for_fabric(self):
        model = WaferPerfModel()
        with pytest.raises(ValueError, match="fabric"):
            model.check_mesh((603, 10, 16))

    def test_mesh_too_tall_for_fabric(self):
        model = WaferPerfModel()
        with pytest.raises(ValueError, match="fabric"):
            model.check_mesh((10, 596, 16))

    def test_z_exceeding_memory(self):
        model = WaferPerfModel()
        with pytest.raises(ValueError, match="tile memory"):
            model.check_mesh((10, 10, 3000))

    def test_headline_mesh_feasible(self):
        WaferPerfModel().check_mesh((600, 595, 1536))  # must not raise


class TestModeledTiming:
    def test_result_carries_model_numbers(self):
        sys_ = momentum_system((10, 10, 12))
        res = WaferBiCGStab().solve(sys_, rtol=2e-3, maxiter=50)
        assert res.modeled_iteration_seconds > 0
        assert res.modeled_total_seconds == pytest.approx(
            res.modeled_iteration_seconds * res.iterations
        )
        assert res.modeled_pflops > 0
        assert res.tile_memory_bytes == 10 * 12 * 2
        assert "us/iter" in res.performance_summary()

    def test_bigger_z_costs_more_time(self):
        model = WaferPerfModel()
        t1 = model.iteration_time((10, 10, 64))
        t2 = model.iteration_time((10, 10, 512))
        assert t2 > t1
