"""Tests for the Fig. 6 AllReduce: routing construction, the discrete
simulation, and the latency model (the <1.5 us claim)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.wse import (
    CS1,
    allreduce_latency_cycles,
    allreduce_latency_seconds,
    allreduce_pattern,
    simulate_allreduce,
)
from repro.wse.allreduce import CH_BCAST
from repro.wse.patterns import Pattern

RNG = np.random.default_rng(41)


class TestPatternConstruction:
    @pytest.mark.parametrize("w,h", [(2, 2), (4, 4), (8, 8), (5, 7), (6, 3)])
    def test_every_core_reachable_by_broadcast(self, w, h):
        """Every tile's config must include a CH_BCAST delivery to 'C'."""
        p = allreduce_pattern(w, h)
        for y in range(h):
            for x in range(w):
                cfg = p.at(x, y)
                delivered = any(
                    ch == CH_BCAST and "C" in outs
                    for (ch, _), outs in cfg.items()
                )
                is_root = (x, y) == (w // 2 - 1, h // 2 - 1)
                assert delivered or is_root, f"tile ({x},{y}) never receives"

    def test_too_small_fabric_rejected(self):
        with pytest.raises(ValueError):
            allreduce_pattern(1, 4)

    def test_pattern_is_pattern(self):
        assert isinstance(allreduce_pattern(4, 4), Pattern)


class TestSimulation:
    @pytest.mark.parametrize("w,h", [(2, 2), (4, 4), (8, 8), (3, 5), (7, 4), (12, 6)])
    def test_sum_correct(self, w, h):
        vals = RNG.standard_normal((h, w)).astype(np.float32)
        result, _ = simulate_allreduce(vals)
        assert result == pytest.approx(float(vals.astype(np.float64).sum()),
                                       abs=1e-4)

    def test_fig6_example_size(self):
        """The paper's illustration uses X=8, Y=8."""
        vals = np.ones((8, 8), dtype=np.float32)
        result, cycles = simulate_allreduce(vals)
        assert result == 64.0
        assert cycles < 100

    def test_latency_scales_with_diameter(self):
        _, c_small = simulate_allreduce(np.ones((4, 4)))
        _, c_large = simulate_allreduce(np.ones((16, 16)))
        assert c_large > c_small
        # roughly linear in the fabric extent, not quadratic
        assert c_large < 6 * c_small

    @given(
        st.integers(2, 10), st.integers(2, 10), st.integers(0, 2**31 - 1)
    )
    @settings(max_examples=20, deadline=None)
    def test_sum_property(self, w, h, seed):
        rng = np.random.default_rng(seed)
        vals = rng.uniform(-10, 10, size=(h, w)).astype(np.float32)
        result, _ = simulate_allreduce(vals)
        assert result == pytest.approx(float(vals.astype(np.float64).sum()),
                                       rel=1e-4, abs=1e-3)

    def test_des_within_model_envelope(self):
        """The analytic model (zero overhead) should bound the DES within
        a small additive margin on small fabrics."""
        for w, h in [(4, 4), (8, 8), (10, 6)]:
            _, cycles = simulate_allreduce(np.ones((h, w)))
            model = allreduce_latency_cycles(w, h, stage_overhead=0)
            assert abs(cycles - model) <= max(6, 0.4 * model)


class TestLatencyModel:
    def test_cs1_under_1_5_microseconds(self):
        """Paper section IV.3 / abstract: AllReduce 'takes under 1.5
        microseconds' on the full fabric."""
        t = allreduce_latency_seconds()
        assert t < 1.5e-6
        assert t > 0.5e-6  # and not trivially small

    def test_about_ten_percent_over_diameter(self):
        """Paper: 'a cycle count only about 10% greater than the
        diameter of the system'."""
        g = CS1.geometry
        cycles = allreduce_latency_cycles(g.fabric_width, g.fabric_height)
        ratio = cycles / g.diameter
        assert 1.02 < ratio < 1.25

    def test_monotone_in_size(self):
        a = allreduce_latency_cycles(8, 8)
        b = allreduce_latency_cycles(64, 64)
        c = allreduce_latency_cycles(602, 595)
        assert a < b < c

    def test_custom_shape(self):
        assert allreduce_latency_seconds(10, 10) < allreduce_latency_seconds()
