"""Tests for the reference BiCGStab (paper Algorithm 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.problems import Stencil7, convection_diffusion_system, poisson_system
from repro.solver import bicgstab, operation_counts

RNG = np.random.default_rng(31)


class TestConvergence:
    def test_spd_system(self):
        sys_ = poisson_system((6, 6, 6))
        res = bicgstab(sys_.operator, sys_.b, rtol=1e-10, maxiter=500)
        assert res.converged
        assert sys_.relative_residual(res.x) < 1e-8

    def test_nonsymmetric_system(self):
        sys_ = convection_diffusion_system((6, 6, 6), peclet=5.0)
        res = bicgstab(sys_.operator, sys_.b, rtol=1e-10, maxiter=500)
        assert res.converged
        assert sys_.relative_residual(res.x) < 1e-8

    def test_identity_converges_in_one(self):
        op = Stencil7.identity((3, 3, 3))
        b = RNG.standard_normal(op.shape)
        res = bicgstab(op, b, rtol=1e-12, maxiter=10)
        assert res.converged
        assert res.iterations == 1
        np.testing.assert_allclose(res.x, b, rtol=1e-12)

    def test_manufactured_solution_recovered(self):
        sys_ = convection_diffusion_system((5, 5, 5)).manufactured(RNG)
        res = bicgstab(sys_.operator, sys_.b, rtol=1e-12, maxiter=500)
        np.testing.assert_allclose(res.x, sys_.x_true, rtol=1e-6, atol=1e-8)

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_random_dominant_systems_converge(self, seed):
        rng = np.random.default_rng(seed)
        op = Stencil7.from_random((4, 4, 4), rng=rng, dominance=1.5)
        x = rng.standard_normal(op.shape)
        b = op.apply(x)
        res = bicgstab(op, b, rtol=1e-10, maxiter=300)
        assert res.converged
        np.testing.assert_allclose(res.x, x, rtol=1e-5, atol=1e-7)


class TestEdgeCases:
    def test_zero_rhs(self):
        op = Stencil7.from_random((3, 3, 3), rng=RNG)
        res = bicgstab(op, np.zeros(op.shape))
        assert res.converged
        assert res.iterations == 0
        np.testing.assert_array_equal(res.x, 0.0)

    def test_initial_guess_exact(self):
        sys_ = poisson_system((4, 4, 4)).manufactured(RNG)
        res = bicgstab(
            sys_.operator, sys_.b, x0=sys_.x_true, rtol=1e-8, maxiter=50
        )
        assert res.converged
        assert res.iterations <= 2

    def test_initial_guess_helps(self):
        sys_ = convection_diffusion_system((5, 5, 5))
        cold = bicgstab(sys_.operator, sys_.b, rtol=1e-10, maxiter=500)
        near = cold.x + 1e-6 * RNG.standard_normal(sys_.shape)
        warm = bicgstab(sys_.operator, sys_.b, x0=near, rtol=1e-10, maxiter=500)
        assert warm.iterations <= cold.iterations

    def test_maxiter_respected(self):
        sys_ = poisson_system((6, 6, 6), source="random")
        res = bicgstab(sys_.operator, sys_.b, rtol=1e-14, maxiter=3)
        assert not res.converged
        assert res.iterations == 3
        assert len(res.residuals) == 3

    def test_callback_invoked(self):
        sys_ = poisson_system((4, 4, 4))
        seen = []
        bicgstab(
            sys_.operator, sys_.b, rtol=1e-8, maxiter=50,
            callback=lambda i, r: seen.append((i, r)),
        )
        assert seen
        assert seen[0][0] == 1
        assert all(r >= 0 for _, r in seen)

    def test_residual_history_monotone_overall(self):
        """BiCGStab is not monotone per-step, but the history must end
        far below where it starts on an easy system."""
        sys_ = poisson_system((6, 6, 6), source="random")
        res = bicgstab(sys_.operator, sys_.b, rtol=1e-10, maxiter=500)
        assert res.residuals[-1] < 1e-3 * res.residuals[0]


class TestPrecisionModes:
    def test_mixed_reaches_fp16_plateau(self):
        sys_ = convection_diffusion_system((6, 6, 6)).preconditioned()
        res = bicgstab(sys_.operator, sys_.b, precision="mixed",
                       rtol=5e-3, maxiter=60)
        assert res.final_residual < 5e-2

    def test_mixed_true_residual_plateaus(self):
        """The *recurrence* residual in fp16 can underflow toward zero,
        but the true residual plateaus near fp16 precision — the Fig. 9
        phenomenon.  (The paper's plotted 'measured normwise relative
        residuals' are the observable plateau.)"""
        sys_ = convection_diffusion_system((6, 6, 6)).preconditioned()
        res = bicgstab(sys_.operator, sys_.b, precision="mixed",
                       rtol=1e-12, maxiter=60, record_true_residual=True)
        assert min(res.true_residuals) > 1e-5  # cannot reach fp64 levels
        ref = bicgstab(sys_.operator, sys_.b, precision="double",
                       rtol=1e-12, maxiter=200)
        assert sys_.relative_residual(ref.x) < 1e-10

    def test_single_beats_mixed_true_residual(self):
        sys_ = convection_diffusion_system((6, 6, 6)).preconditioned()
        r32 = bicgstab(sys_.operator, sys_.b, precision="single",
                       rtol=0.0, maxiter=40, record_true_residual=True)
        rmx = bicgstab(sys_.operator, sys_.b, precision="mixed",
                       rtol=0.0, maxiter=40, record_true_residual=True)
        assert min(r32.true_residuals) < min(rmx.true_residuals)

    def test_storage_dtype_respected(self):
        sys_ = poisson_system((4, 4, 4)).preconditioned()
        res = bicgstab(sys_.operator, sys_.b, precision="mixed", maxiter=5,
                       rtol=0.0)
        # x is reported in fp64 but holds fp16-representable values.
        assert np.array_equal(
            res.x, res.x.astype(np.float16).astype(np.float64)
        )

    def test_true_residual_recording(self):
        sys_ = poisson_system((4, 4, 4))
        res = bicgstab(sys_.operator, sys_.b, rtol=1e-10, maxiter=50,
                       record_true_residual=True)
        assert res.true_residuals is not None
        assert len(res.true_residuals) == len(res.residuals)
        # In fp64 the recurrence and true residuals track closely.
        np.testing.assert_allclose(
            res.true_residuals[:5], res.residuals[:5], rtol=1e-6, atol=1e-12
        )


class TestDotInjection:
    def test_custom_dot_used(self):
        sys_ = poisson_system((4, 4, 4))
        calls = {"n": 0}

        def spy_dot(u, v):
            calls["n"] += 1
            return float(np.dot(u.ravel().astype(np.float64),
                                v.ravel().astype(np.float64)))

        res = bicgstab(sys_.operator, sys_.b, rtol=1e-8, maxiter=50,
                       dot_fn=spy_dot)
        assert res.converged
        # 1 (bnorm) + 1 (initial check) + 1 (rho) + 5/iter (4 + norm).
        assert calls["n"] == 3 + 5 * res.iterations


class TestOperationCounts:
    def test_counts_match_table1_structure(self):
        counts = operation_counts()
        assert counts == {"spmv": 2, "dot": 4, "axpy": 6}
