"""Tests for the roofline analysis and the multi-wafer clustering model."""

import pytest

from repro.perfmodel import (
    MultiWaferModel,
    RooflineMachine,
    attainable_fraction,
    bicgstab_intensity,
    cs1_core_roofline,
    roofline_table,
    xeon_socket_roofline,
)


class TestRoofline:
    def test_intensity_by_precision(self):
        """~1 flop per word: 0.125 flop/B at fp64, 0.5 at fp16."""
        assert bicgstab_intensity("double") == pytest.approx(0.125)
        assert bicgstab_intensity("mixed") == pytest.approx(0.5)
        assert bicgstab_intensity("single") == pytest.approx(0.25)

    def test_xeon_is_bandwidth_bound(self):
        """The intro's regime: the solver sits far left of the Xeon
        ridge, attainable ~1% of peak — the HPCG phenomenon."""
        xeon = xeon_socket_roofline()
        ai = bicgstab_intensity("double")
        assert xeon.bandwidth_bound(ai)
        frac = xeon.fraction_of_peak(ai)
        assert 0.003 < frac < 0.03

    def test_cs1_is_compute_bound(self):
        """The wafer's balance puts the fp16 solver past the ridge."""
        cs1 = cs1_core_roofline()
        ai = bicgstab_intensity("mixed")
        assert not cs1.bandwidth_bound(ai)
        assert cs1.fraction_of_peak(ai) == 1.0

    def test_ridge_points(self):
        assert xeon_socket_roofline().ridge_point == pytest.approx(12.0)
        assert cs1_core_roofline().ridge_point == pytest.approx(1 / 3, rel=1e-6)

    def test_attainable_caps_at_peak(self):
        m = RooflineMachine("m", peak_flops=100.0, mem_bandwidth=10.0)
        assert m.attainable(1000.0) == 100.0
        assert m.attainable(1.0) == 10.0

    def test_invalid_intensity(self):
        with pytest.raises(ValueError):
            cs1_core_roofline().attainable(0.0)

    def test_table_shape(self):
        rows = roofline_table()
        assert len(rows) == 3
        bounds = {r["machine"]: r["bound"] for r in rows}
        assert bounds["Xeon 6148 socket (fp64)"] == "bandwidth"
        assert bounds["V100 GPU (fp64)"] == "bandwidth"
        assert bounds["CS-1 core (fp16)"] == "compute"

    def test_roofline_consistent_with_measured_fractions(self):
        """The roofline bound must sit above what the calibrated models
        actually achieve (it is an upper bound)."""
        from repro.perfmodel import ClusterModel, HEADLINE_MESH, WaferPerfModel

        xeon_bound = attainable_fraction(xeon_socket_roofline(), "double")
        measured = ClusterModel().fraction_of_peak((600, 600, 600), 1024)
        assert measured <= xeon_bound * 1.05
        wafer_bound = attainable_fraction(cs1_core_roofline(), "mixed")
        wafer_measured = WaferPerfModel().fraction_of_peak(HEADLINE_MESH)
        assert wafer_measured <= wafer_bound


class TestMultiWafer:
    def test_capacity_linear(self):
        m = MultiWaferModel()
        assert m.capacity_meshpoints(4) == 4 * m.capacity_meshpoints(1)

    def test_single_wafer_no_overhead(self):
        m = MultiWaferModel()
        pt = m.point(1, 595)
        assert pt.efficiency == 1.0
        assert pt.interwafer_seconds == 0.0

    def test_weak_scaling_efficiency_with_good_links(self):
        m = MultiWaferModel(link_bandwidth=300e9)
        curve = m.scaling_curve(4)
        assert all(pt.efficiency > 0.9 for pt in curve)

    def test_insufficient_bandwidth_hurts(self):
        slow = MultiWaferModel(link_bandwidth=50e9)
        fast = MultiWaferModel(link_bandwidth=500e9)
        assert slow.point(2, 595).efficiency < 0.5
        assert fast.point(2, 595).efficiency > 0.9

    def test_sufficient_bandwidth_threshold(self):
        """At exactly the 'sufficient' rate, halo == compute; above it
        the exposed halo is zero."""
        m = MultiWaferModel()
        bw = m.sufficient_bandwidth()
        assert 100e9 < bw < 1e12
        above = MultiWaferModel(link_bandwidth=bw * 1.2)
        pt = above.point(2, 595)
        assert pt.interwafer_seconds == pytest.approx(
            above.collective_penalty()
        )

    def test_meshpoints_grow_with_wafers(self):
        m = MultiWaferModel()
        curve = m.scaling_curve(3)
        pts = [c.total_meshpoints for c in curve]
        assert pts[1] == 2 * pts[0] and pts[2] == 3 * pts[0]

    def test_slab_too_tall_rejected(self):
        with pytest.raises(ValueError):
            MultiWaferModel().point(2, 700)

    def test_invalid_wafer_count(self):
        with pytest.raises(ValueError):
            MultiWaferModel().capacity_meshpoints(0)
