"""Smoke tests for the ``python -m repro trace`` CLI path."""

import json

from repro.cli import main
from repro.obs.cli import trace_report


class TestTraceCli:
    def test_trace_writes_and_prints(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        rc = main([
            "trace", "--shape", "4", "4", "8", "--maxiter", "6",
            "--out", str(out),
        ])
        assert rc == 0
        printed = capsys.readouterr().out
        assert "per-phase cycle breakdown" in printed
        assert "iteration telemetry" in printed
        assert "100.0%" in printed
        data = json.loads(out.read_text())
        assert data["traceEvents"]
        assert data["otherData"]["timestamp_unit"] == "1 simulated fabric cycle"
        heatmaps = list(tmp_path.glob("trace_heatmap_*"))
        assert any(p.suffix == ".npy" for p in heatmaps)
        assert any(p.suffix == ".csv" for p in heatmaps)

    def test_no_files_mode(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        rc = main(["trace", "--shape", "4", "4", "8", "--maxiter", "6",
                   "--no-files"])
        assert rc == 0
        assert "per-phase cycle breakdown" in capsys.readouterr().out
        assert not list(tmp_path.iterdir())

    def test_report_registry_entry(self):
        from repro.analysis.reports import REPORTS

        assert "trace" in REPORTS
        assert REPORTS["trace"] is not None

    def test_trace_report_renders(self):
        text = trace_report()
        assert "per-phase cycle breakdown" in text
        assert "observed fabrics:" in text

    def test_listed_in_help(self, capsys):
        main(["list"])
        assert "trace" in capsys.readouterr().out
