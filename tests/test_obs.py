"""Tests for the observability layer (`repro.obs`).

Covers the metric instruments, the span tracer, the fabric observer
hooks (including exact cycle accounting against the active-set engine),
Chrome-trace export validity, the folded-in ``FabricTrace``/``trace_run``
(whose retired ``repro.wse.stats`` shim must stay gone), deadlock
behaviour under tracing, and the end-to-end DES solve acceptance
criterion: phase spans tile the unified wafer timeline exactly.
"""

import json

import numpy as np
import pytest

from repro.kernels.bicgstab_des import DESBiCGStab
from repro.obs import (
    FabricTrace,
    MetricsRegistry,
    ObsSession,
    SpanTracer,
    chrome_trace_events,
    export_heatmaps,
    phase_table,
    telemetry_table,
    trace_run,
)
from repro.problems import momentum_system
from repro.wse import (
    CS1,
    Core,
    Fabric,
    FabricDeadlockError,
    FabricRx,
    Instruction,
    MemCursor,
    Port,
)

RNG = np.random.default_rng(7)


# ----------------------------------------------------------------------
# A tiny word source/sink pair driving real traffic down a router line.
# ----------------------------------------------------------------------
class _Src:
    def __init__(self, words):
        self._tx = [(0, w) for w in words]
        self.received = []

    def deliver(self, channel, value):
        self.received.append(value)

    def poll_tx(self, channel):
        return self._tx.pop(0)[1] if self._tx else None

    def tx_channels(self):
        return [0] if self._tx else []

    def step(self):
        return 0

    @property
    def idle(self):
        return not self._tx


def _line(n, k_words):
    f = Fabric(n, 1)
    src = _Src(range(k_words))
    sink = _Src([])
    f.attach_core(0, 0, src)
    f.attach_core(n - 1, 0, sink)
    f.router(0, 0).set_route(0, Port.CORE, (Port.EAST,))
    for x in range(1, n - 1):
        f.attach_core(x, 0, _Src([]))
        f.router(x, 0).set_route(0, Port.WEST, (Port.EAST,))
    f.router(n - 1, 0).set_route(0, Port.WEST, (Port.CORE,))
    return f, sink


def _stuck_fabric():
    """A core wedged on a word that can never arrive (deadlocks)."""
    f = Fabric(2, 1)
    core = Core(0, 0, CS1)
    f.attach_core(0, 0, core)
    q = core.subscribe(5)
    out = np.zeros(4, dtype=np.float32)
    core.launch(Instruction(
        op="copy",
        dst=MemCursor(out, 0, 4, name="out"),
        srcs=[FabricRx(q, 4, 5, name="never")],
        length=4,
        name="starved",
    ), thread=1)
    return f


# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter(self):
        reg = MetricsRegistry()
        c = reg.counter("words")
        c.inc()
        c.inc(9)
        assert c.value == 10
        assert reg.counter("words") is c  # get-or-create
        assert reg.as_dict()["words"] == {"type": "counter", "value": 10}

    def test_gauge_extremes(self):
        g = MetricsRegistry().gauge("occ")
        for v in (3, 7, 1):
            g.set(v)
        assert (g.value, g.max, g.min, g.samples) == (1, 7, 1, 3)

    def test_histogram_buckets_and_percentiles(self):
        h = MetricsRegistry().histogram("depth")
        for v in (0, 1, 2, 3, 4, 100):
            h.observe(v)
        assert h.count == 6
        assert h.mean == pytest.approx(110 / 6)
        assert h.max == 100 and h.min == 0
        # p50 is an upper-bound estimate within one power-of-two bucket.
        assert 2 <= h.percentile(50) <= 3
        assert h.percentile(100) == 100.0

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("x")

    def test_format_renders(self):
        reg = MetricsRegistry()
        reg.counter("a.b").inc(2)
        reg.histogram("c").observe(5)
        text = reg.format()
        assert "a.b" in text and "histogram" in text


class TestSpanTracer:
    def test_record_and_totals(self):
        t = SpanTracer()
        t.record("spmv", 0, 10, cat="phase")
        t.record("spmv", 10, 5, cat="phase")
        t.record("axpy", 15, 3, cat="phase")
        t.record("iteration[1]", 0, 18, cat="iteration")
        assert t.totals(cat="phase") == {"spmv": 15, "axpy": 3}
        assert t.count("spmv") == 2
        assert len(t) == 4
        assert t.spans[0].end == 10

    def test_clocked_context_manager(self):
        clock = [0]
        t = SpanTracer(clock=lambda: clock[0])
        with t.span("work", cat="phase"):
            clock[0] = 42
        (span,) = t.spans
        assert (span.start, span.dur) == (0, 42)

    def test_clockless_span_raises(self):
        with pytest.raises(RuntimeError, match="no clock"):
            with SpanTracer().span("x"):
                pass


class TestFabricObserver:
    def test_cycle_accounting_exact(self):
        """stepped + skipped == fabric.cycle, words match the fabric."""
        f, sink = _line(4, 10)
        obs = ObsSession()
        fo = obs.observe_fabric("line", f)
        f.run()
        f.skip_cycles(100)
        assert len(sink.received) == 10
        assert fo.stepped_cycles + fo.skipped_cycles == f.cycle
        assert fo.total_words == f.total_words_moved
        assert fo.peak_occupancy > 0

    def test_detach_restores_hot_path(self):
        f, _ = _line(3, 4)
        obs = ObsSession()
        obs.observe_fabric("line", f)
        obs.detach()
        assert f.obs is None
        f.run()  # no callbacks fired
        assert obs.fabrics["line"].stepped_cycles == 0

    def test_observe_fabric_idempotent_and_name_guarded(self):
        f, _ = _line(3, 1)
        obs = ObsSession()
        fo = obs.observe_fabric("line", f)
        assert obs.observe_fabric("line", f) is fo
        with pytest.raises(ValueError, match="already observed"):
            obs.observe_fabric("line", Fabric(2, 2))
        assert obs.unique_fabric_name("line") == "line.1"

    def test_series_is_change_points(self):
        """The words-per-cycle series stores change points only, so an
        O(1) skipped span never becomes O(n) when observed."""
        f, _ = _line(3, 6)
        obs = ObsSession()
        fo = obs.observe_fabric("line", f)
        f.run()
        n_before = len(fo.series)
        f.skip_cycles(1_000_000)
        assert len(fo.series) <= n_before + 1
        cycles = [c for c, _ in fo.series]
        assert cycles == sorted(cycles)

    def test_harvest_and_grids(self):
        f, _ = _line(4, 8)
        obs = ObsSession()
        fo = obs.observe_fabric("line", f)
        f.run()
        obs.harvest()
        d = obs.metrics.as_dict()
        assert d["line.router_words_moved"]["count"] > 0
        grids = fo.utilization_grids()
        assert grids["router_words"].shape == (1, 4)
        assert grids["router_words"].sum() == f.total_words_moved

    def test_reference_engine_also_observed(self):
        f, sink = _line(4, 6)
        f.engine = "reference"
        obs = ObsSession()
        fo = obs.observe_fabric("line", f)
        f.run()
        assert len(sink.received) == 6
        assert fo.stepped_cycles == f.cycle
        assert fo.total_words == f.total_words_moved

    def test_utilization_excludes_preattach_busy(self):
        """Regression: busy cycles accumulated before the observer
        attached (warm-ups, prior runs) must not inflate core_busy —
        utilization normalizes to the observed window only."""
        from repro.kernels.spmv3d import SpmvEngine
        from repro.problems.stencil7 import Stencil7

        op, _b, _dinv = Stencil7.from_random(
            (3, 3, 8), rng=np.random.default_rng(3)).jacobi_precondition()
        v = 0.1 * np.random.default_rng(5).standard_normal(op.shape)

        def observed_busy(warm_runs):
            eng = SpmvEngine(op)  # constructor itself runs a warm-up
            for _ in range(warm_runs):
                eng.run(v)  # more unobserved busy cycles
            obs = ObsSession()
            fo = obs.observe_fabric("spmv", eng.fabric)
            eng.run(v)
            return fo.utilization_grids()["core_busy"]

        busy = observed_busy(warm_runs=2)
        assert 0 < busy.max() <= 1.0
        # However many runs happened pre-attach, the observed window's
        # fractions are those of a single run — no residue.
        assert np.allclose(busy, observed_busy(warm_runs=0))


class TestChromeExport:
    def test_events_well_formed(self, tmp_path):
        f, _ = _line(4, 10)
        obs = ObsSession()
        obs.observe_fabric("line", f)
        f.run()
        obs.tracer.record("kernel", 0, f.cycle, cat="phase")
        obs.tracer.sample("residual", 3, 0.5)
        path = obs.write_chrome_trace(tmp_path / "t.json")
        data = json.loads(path.read_text())
        events = data["traceEvents"]
        assert any(e["ph"] == "X" for e in events)
        assert any(e["ph"] == "C" for e in events)
        names = {e["args"]["name"] for e in events
                 if e["ph"] == "M" and e["name"] == "thread_name"}
        assert "fabric:line" in names and "wafer" in names
        for e in events:
            if e["ph"] == "M":
                continue
            assert isinstance(e["ts"], int) and e["ts"] >= 0
            if e["ph"] == "X":
                assert e["dur"] >= 0
        assert data["otherData"]["metrics"]["line.words_moved"]["value"] > 0

    def test_long_counter_series_strided(self):
        obs = ObsSession()
        for i in range(50_000):
            obs.tracer.sample("r", i, float(i))
        events = chrome_trace_events(obs)
        counters = [e for e in events if e["ph"] == "C"]
        from repro.obs.export import MAX_COUNTER_SAMPLES

        assert 0 < len(counters) <= MAX_COUNTER_SAMPLES + 1

    def test_strided_series_preserves_first_and_last(self):
        """Striding must emit the series endpoints exactly: the final
        value is the run's end state and may never be dropped."""
        obs = ObsSession()
        n = 50_000
        for i in range(n):
            obs.tracer.sample("r", i, float(i))
        counters = [e for e in chrome_trace_events(obs)
                    if e["ph"] == "C" and e["name"] == "r"]
        assert counters[0]["ts"] == 0
        assert counters[0]["args"]["value"] == 0.0
        assert counters[-1]["ts"] == n - 1
        assert counters[-1]["args"]["value"] == float(n - 1)

    def test_harvested_metrics_become_counter_tracks(self, tmp_path):
        f, _ = _line(4, 10)
        obs = ObsSession()
        obs.observe_fabric("line", f)
        f.run()
        obs.harvest()
        events = chrome_trace_events(obs)
        names = {e["name"] for e in events if e["ph"] == "C"}
        assert "line.router_words_moved" in names
        tracks = [e for e in events
                  if e["ph"] == "C" and e["name"] == "line.router_words_moved"]
        # Emitted as a flat track spanning the run (start and end).
        assert {e["ts"] for e in tracks} == {0, f.cycle}


class TestFabricTrace:
    def test_snapshot_uses_active_set(self):
        """The recorder matches full-grid sampling because a router
        holding words is always in the active set."""
        f, sink = _line(4, 10)
        cycles, trace = trace_run(f)
        assert len(sink.received) == 10
        assert trace.total_words == f.total_words_moved
        assert trace.cycles == cycles
        assert trace.peak_occupancy > 0

    def test_busiest_routers_no_grid_sweep(self):
        f, _ = _line(5, 10)
        _, trace = trace_run(f)
        busiest = trace.busiest_routers(5)
        counts = [n for _, n in busiest]
        assert counts == sorted(counts, reverse=True)
        # Only ever-active routers are candidates.
        assert len(busiest) <= 5

    def test_deadlock_diagnosed_with_partial_trace(self):
        """Satellite 3: a stuck program under tracing still raises
        FabricDeadlockError naming the stuck core, and the partial
        trace up to the stuck cycle remains usable."""
        f = _stuck_fabric()
        with pytest.raises(FabricDeadlockError, match=r"\(0,0\)") as ei:
            trace_run(f, max_cycles=50_000)
        assert f.cycle < 10  # diagnosed immediately, not timed out
        trace = ei.value.trace
        assert trace.cycles == f.cycle  # includes the stuck cycle
        assert "words/cycle" in trace.report()

    def test_deadlock_under_session_tracing_exportable(self, tmp_path):
        """A deadlocked run observed by an ObsSession still diagnoses
        the stuck core, and the partial record exports valid JSON."""
        f = _stuck_fabric()
        obs = ObsSession()
        fo = obs.observe_fabric("stuck", f)
        with pytest.raises(FabricDeadlockError, match=r"\(0,0\)"):
            f.run(max_cycles=50_000)
        assert fo.stepped_cycles == f.cycle
        path = obs.write_chrome_trace(tmp_path / "partial.json")
        assert json.loads(path.read_text())["traceEvents"]

    def test_stats_shim_retired(self):
        """The deprecated ``repro.wse.stats`` PEP 562 shim is gone; the
        canonical homes are ``repro.obs.trace`` and the ``repro.wse``
        re-export."""
        with pytest.raises(ImportError):
            from repro.wse import stats  # noqa: F401
        from repro.obs.trace import FabricTrace as canonical
        from repro.wse import FabricTrace as reexported

        assert canonical is reexported is FabricTrace
        from repro.obs.trace import trace_run as canonical_run
        from repro.wse import trace_run as reexported_run

        assert canonical_run is reexported_run is trace_run


class TestObservedSolve:
    @pytest.fixture(scope="class")
    def solved(self):
        sys_ = momentum_system((6, 6, 8), reynolds=50.0, dt=0.02)
        obs = ObsSession()
        solver = DESBiCGStab(sys_.operator, obs=obs)
        result = solver.solve(sys_.b, rtol=5e-3, maxiter=10)
        obs.harvest()
        return obs, solver, result

    def test_phase_spans_tile_timeline(self, solved):
        """Acceptance criterion: summed per-phase span cycles equal the
        fabric's total stepped cycles on the unified timeline."""
        obs, solver, result = solved
        assert result.converged
        totals = obs.phase_totals()
        assert set(totals) == {"spmv", "allreduce", "axpy", "dot_local"}
        assert sum(totals.values()) == solver.report.total_cycles
        for fo in obs.fabrics.values():
            assert fo.fabric.cycle == solver.report.total_cycles
            assert fo.stepped_cycles + fo.skipped_cycles == fo.fabric.cycle

    def test_phase_spans_are_contiguous(self, solved):
        obs, _, _ = solved
        spans = sorted((s for s in obs.tracer.spans if s.cat == "phase"),
                       key=lambda s: s.start)
        pos = 0
        for s in spans:
            assert s.start == pos
            pos = s.end

    def test_iteration_spans_and_telemetry(self, solved):
        obs, _, result = solved
        iters = [s for s in obs.tracer.spans if s.cat == "iteration"]
        assert len(iters) == result.iterations
        assert iters[0].args["residual"] == result.residuals[0]
        assert len(obs.telemetry) == result.iterations
        rec = obs.telemetry[0]
        assert {"iteration", "residual", "rho", "alpha", "omega"} <= set(rec)

    def test_kernel_spans_recorded(self, solved):
        obs, solver, _ = solved
        runs = [s for s in obs.tracer.spans if s.name == "spmv.run"]
        assert len(runs) == solver.report.spmv_runs
        assert all(s.cat == "kernel" for s in runs)

    def test_fabric_metrics_flow(self, solved):
        obs, _, _ = solved
        d = obs.metrics.as_dict()
        assert d["spmv.words_moved"]["value"] > 0
        assert d["allreduce.words_moved"]["value"] > 0
        assert d["spmv.fifo_high_water"]["count"] > 0
        assert d["allreduce.router_queue_occupancy"]["max"] >= 1

    def test_reports_render(self, solved):
        obs, _, result = solved
        table = phase_table(obs, iterations=result.iterations)
        assert "spmv" in table and "100.0%" in table
        tele = telemetry_table(obs)
        assert "residual" in tele

    def test_heatmap_export(self, solved, tmp_path):
        obs, _, _ = solved
        paths = export_heatmaps(obs, tmp_path / "hm")
        # 2 fabrics x 2 grids x 2 formats
        assert len(paths) == 8
        npy = [p for p in paths if p.suffix == ".npy"]
        for p in npy:
            grid = np.load(p)
            assert grid.shape == (6, 6)
        words = np.load([p for p in npy if "spmv_router_words" in p.name][0])
        assert words.sum() > 0

    def test_chrome_trace_round_trip(self, solved, tmp_path):
        obs, solver, _ = solved
        path = obs.write_chrome_trace(tmp_path / "solve.json")
        data = json.loads(path.read_text())
        phase_dur: dict[str, int] = {}
        for e in data["traceEvents"]:
            if e.get("cat") == "phase":
                phase_dur[e["name"]] = phase_dur.get(e["name"], 0) + e["dur"]
        assert sum(phase_dur.values()) == solver.report.total_cycles

    def test_unobserved_solve_identical(self, solved):
        """Observation never perturbs the simulation."""
        _, solver, result = solved
        sys_ = momentum_system((6, 6, 8), reynolds=50.0, dt=0.02)
        bare = DESBiCGStab(sys_.operator)
        bare_res = bare.solve(sys_.b, rtol=5e-3, maxiter=10)
        assert np.array_equal(bare_res.x, result.x)
        assert bare_res.residuals == result.residuals
        assert bare.report.total_cycles == solver.report.total_cycles


class TestReplayObservation:
    """Observability composed with the record/replay engine: counters
    fold bit-identically from the tape, sampled instruments are (by
    documented design) not re-sampled, and phase spans keep tiling the
    unified timeline across live -> replay -> live transitions."""

    def _spmv_session(self, engine, runs=3):
        from repro.kernels.spmv3d import SpmvEngine
        from repro.problems.stencil7 import Stencil7

        op, _b, _dinv = Stencil7.from_random(
            (3, 3, 8), rng=np.random.default_rng(3)).jacobi_precondition()
        obs = ObsSession()
        eng = SpmvEngine(op, engine=engine, obs=obs)
        v = 0.1 * np.random.default_rng(5).standard_normal(op.shape)
        for _ in range(runs):
            eng.run(v)
        return obs

    def test_replay_counters_bit_identical(self):
        live = self._spmv_session("active").metrics.as_dict()
        rep = self._spmv_session("replay").metrics.as_dict()
        for key in ("spmv.stepped_cycles", "spmv.skipped_cycles",
                    "spmv.words_moved", "spmv.core_stall_cycles"):
            assert rep[key]["value"] == live[key]["value"], key

    def test_replay_does_not_resample_gauges(self):
        """Replay executes no per-cycle sweep, so sampled instruments
        (active-router histogram, occupancy gauge) only reflect the live
        recording run — fewer observations than the all-live session."""
        live = self._spmv_session("active").metrics.as_dict()
        rep = self._spmv_session("replay").metrics.as_dict()
        assert 0 < (rep["spmv.active_routers"]["count"]
                    ) < live["spmv.active_routers"]["count"]

    def test_phase_spans_tile_timeline_under_replay(self):
        sys_ = momentum_system((6, 6, 8), reynolds=50.0, dt=0.02)
        obs = ObsSession()
        solver = DESBiCGStab(sys_.operator, engine="replay", obs=obs)
        result = solver.solve(sys_.b, rtol=5e-3, maxiter=10)
        assert result.converged
        totals = obs.phase_totals()
        assert sum(totals.values()) == solver.report.total_cycles
        spans = sorted((s for s in obs.tracer.spans if s.cat == "phase"),
                       key=lambda s: s.start)
        pos = 0
        for s in spans:
            assert s.start == pos
            pos = s.end
        assert pos == solver.report.total_cycles
        for fo in obs.fabrics.values():
            assert fo.stepped_cycles + fo.skipped_cycles == fo.fabric.cycle
