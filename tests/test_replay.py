"""Trace-compiled replay engine (:mod:`repro.wse.replay`).

Four suites:

* bit-identity — every kernel runner's ``engine="replay"`` path agrees
  with a fresh live ``"active"`` run on results, cycle counts, and
  word/router accounting;
* refusal — programs whose schedule determinism the analyzer cannot
  prove are refused statically (the session never records; runs stay
  on the live engine, with diagnostics);
* invalidation — mutating the program (``set_route``) or attaching a
  sanitizer (including ``Fabric.run(sanitize=True)``) invalidates the
  compiled schedule and forces a fresh recording;
* engine-switch boundaries — ``skip_cycles``/``quiescent`` and the
  observer's ``on_skip``/``on_replay`` accounting stay consistent
  across live -> replay -> live transitions on one fabric timeline.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.kernels.bicgstab_des import DESBiCGStab
from repro.kernels.blas_des import run_axpy_des, run_dot_des
from repro.kernels.spmv2d_des import run_spmv2d_des
from repro.kernels.spmv3d import SpmvEngine, run_spmv_des
from repro.obs import ObsSession
from repro.problems import Stencil7, Stencil9
from repro.wse import Fabric, Port
from repro.wse.allreduce import AllReduceEngine
from repro.wse.replay import RecordingError, ReplaySession


def _op3d(shape, seed=0):
    op = Stencil7.from_random(shape, rng=np.random.default_rng(seed))
    pre, _, _ = op.jacobi_precondition()
    return pre


def _router_words(fabric):
    return {
        (x, y): fabric.router(x, y).words_moved
        for y in range(fabric.height)
        for x in range(fabric.width)
    }


class _PlainCore:
    """Duck-typed core with no program declaration: unprovable."""

    def __init__(self):
        self._tx = []

    def deliver(self, channel, value):
        pass

    def poll_tx(self, channel):
        return None

    def tx_channels(self):
        return []

    def step(self):
        return 0

    @property
    def idle(self):
        return True


# ----------------------------------------------------------------------
# Bit-identity: replay vs fresh live engines
# ----------------------------------------------------------------------
class TestReplayBitIdentity:
    def test_allreduce_engine(self):
        rng = np.random.default_rng(11)
        w, h = 5, 4
        eng_r = AllReduceEngine(w, h, engine="replay")
        for i in range(3):
            vals = rng.random((h, w)).astype(np.float32)
            eng_a = AllReduceEngine(w, h, engine="active")
            t_a, c_a = eng_a.reduce(vals)
            t_r, c_r = eng_r.reduce(vals)
            assert t_r == t_a  # bit-identical fp32 reduction
            assert c_r == c_a
        sess = eng_r.replay
        assert (sess.records, sess.replays, sess.fallbacks) == (1, 2, 0)
        # Per-router word accounting over all three reduces matches a
        # live engine that ran the same three.
        eng_live = AllReduceEngine(w, h, engine="active")
        rng = np.random.default_rng(11)
        for i in range(3):
            eng_live.reduce(rng.random((h, w)).astype(np.float32))
        assert _router_words(eng_r.fabric) == _router_words(eng_live.fabric)
        assert (eng_r.fabric.total_words_moved
                == eng_live.fabric.total_words_moved)

    def test_spmv_engine(self):
        shape = (3, 3, 8)
        op = _op3d(shape, 5)
        rng = np.random.default_rng(6)
        eng_r = SpmvEngine(op, engine="replay")
        eng_a = SpmvEngine(op, engine="active")
        for i in range(3):
            v = (0.1 * rng.standard_normal(shape)).astype(np.float16)
            u_a, c_a = eng_a.run(v)
            u_r, c_r = eng_r.run(v)
            np.testing.assert_array_equal(
                np.asarray(u_a, dtype=np.float64).view(np.uint64),
                np.asarray(u_r, dtype=np.float64).view(np.uint64),
            )
            assert c_r == c_a
        sess = eng_r.replay
        assert (sess.records, sess.replays, sess.fallbacks) == (1, 2, 0)
        assert _router_words(eng_r.fabric) == _router_words(eng_a.fabric)
        sa, sr = eng_a.fabric.stats, eng_r.fabric.stats
        for field in ("cycles", "skipped_cycles", "active_router_cycles",
                      "active_core_cycles", "peak_active_routers",
                      "peak_active_cores"):
            assert getattr(sr, field) == getattr(sa, field), field

    @pytest.mark.parametrize("two_sum", [False, True])
    def test_spmv3d_one_shot(self, two_sum):
        shape = (3, 4, 6)
        op = _op3d(shape, 7)
        v = 0.1 * np.random.default_rng(8).standard_normal(shape)
        u_a, c_a = run_spmv_des(op, v, two_sum_tasks=two_sum,
                                engine="active")
        u_r, c_r = run_spmv_des(op, v, two_sum_tasks=two_sum,
                                engine="replay")
        assert c_r == c_a
        np.testing.assert_array_equal(u_a, u_r)

    def test_spmv2d_one_shot(self):
        op = Stencil9.from_random((6, 6), rng=np.random.default_rng(9))
        v = 0.1 * np.random.default_rng(10).standard_normal((6, 6))
        u_a, c_a = run_spmv2d_des(op, v, (2, 3), engine="active")
        u_r, c_r = run_spmv2d_des(op, v, (2, 3), engine="replay")
        assert c_r == c_a
        np.testing.assert_array_equal(u_a, u_r)

    def test_blas_one_shot(self):
        x = np.random.default_rng(1).random(17).astype(np.float16)
        y = np.random.default_rng(2).random(17).astype(np.float16)
        ra, ca = run_axpy_des(0.7, x, y, engine="active")
        rr, cr = run_axpy_des(0.7, x, y, engine="replay")
        assert ca == cr
        np.testing.assert_array_equal(ra, rr)
        da, ca = run_dot_des(x, y, engine="active")
        dr, cr = run_dot_des(x, y, engine="replay")
        assert ca == cr
        assert da == dr

    def test_bicgstab_solve(self):
        shape = (4, 4, 8)
        rng = np.random.default_rng(42)
        op = Stencil7.from_random(shape, rng=rng)
        b = rng.standard_normal(shape)
        pre, bprime, _ = op.jacobi_precondition(b)
        sol_a = DESBiCGStab(pre, engine="active").solve(bprime, maxiter=8)
        solver_r = DESBiCGStab(pre, engine="replay")
        sol_r = solver_r.solve(bprime, maxiter=8)
        np.testing.assert_array_equal(
            np.asarray(sol_a.x).view(np.uint64),
            np.asarray(sol_r.x).view(np.uint64),
        )
        assert sol_a.residuals == sol_r.residuals
        ra, rr = sol_a.info["report"], sol_r.info["report"]
        for f in ("spmv_cycles", "allreduce_cycles", "axpy_cycles",
                  "dot_local_cycles", "spmv_runs", "allreduce_runs",
                  "total_cycles"):
            assert getattr(ra, f) == getattr(rr, f), f
        # Iteration 1 recorded, the rest replayed.
        assert solver_r._spmv_eng.replay.records == 1
        assert solver_r._spmv_eng.replay.replays > 0
        assert solver_r._ar_eng.replay.replays > 0

    def test_bicgstab_replay_requires_persistent(self):
        pre = _op3d((2, 2, 4), 1)
        with pytest.raises(ValueError, match="persistent"):
            DESBiCGStab(pre, engine="replay", persistent=False)


# ----------------------------------------------------------------------
# Refusal: unprovable programs never record
# ----------------------------------------------------------------------
class TestReplayRefusal:
    def test_undeclared_program_refused(self):
        # Seeded so the fabric shape is arbitrary but reproducible.
        rng = np.random.default_rng(1234)
        w, h = int(rng.integers(2, 5)), int(rng.integers(2, 5))
        fabric = Fabric(w, h)
        fabric.attach_core(0, 0, _PlainCore())
        session = ReplaySession(fabric, label="undeclared")
        assert not session.proof.ok
        assert not session.enabled
        assert any("refused" in d for d in session.diagnostics)
        assert any("declaration" in d.lower() or "decl" in d.lower()
                   for d in session.diagnostics)
        with pytest.raises(RecordingError):
            with session.record():
                pass  # pragma: no cover - record() raises first
        assert session.schedule is None

    def test_record_failure_cap_disables_session(self):
        eng = AllReduceEngine(3, 3, engine="replay")
        sess = eng.replay
        assert sess.enabled
        sess._record_failures = sess.MAX_RECORD_FAILURES
        assert not sess.enabled
        # The engine still runs live and counts the fallback.
        vals = np.random.default_rng(0).random((3, 3)).astype(np.float32)
        ref = AllReduceEngine(3, 3, engine="active")
        t_live, c_live = ref.reduce(vals)
        t, c = eng.reduce(vals)
        assert (t, c) == (t_live, c_live)
        assert sess.records == 0
        assert sess.fallbacks >= 1


# ----------------------------------------------------------------------
# Invalidation: program mutation and sanitizer attachment
# ----------------------------------------------------------------------
class TestReplayInvalidation:
    def _engine(self, seed=3):
        eng = AllReduceEngine(4, 3, engine="replay")
        rng = np.random.default_rng(seed)
        vals = rng.random((3, 4)).astype(np.float32)
        eng.reduce(vals)  # records
        eng.reduce(vals)  # replays
        sess = eng.replay
        assert (sess.records, sess.replays) == (1, 1)
        return eng, sess, vals

    def test_set_route_invalidates(self):
        eng, sess, vals = self._engine(seed=3)
        # A routing change on an unused channel does not alter the
        # collective, but it *could* have: the token must invalidate.
        eng.fabric.router(0, 0).set_route(15, Port.CORE, (Port.CORE,))
        assert not sess.valid()
        ref = AllReduceEngine(4, 3, engine="active")
        t_live, c_live = ref.reduce(vals)
        t, c = eng.reduce(vals)  # falls back live and re-records
        assert (t, c) == (t_live, c_live)
        assert sess.invalidations == 1
        assert sess.records == 2
        assert any("mutated" in d for d in sess.diagnostics)
        # The fresh recording replays again.
        t2, c2 = eng.reduce(vals)
        assert (t2, c2) == (t_live, c_live)
        assert sess.replays == 2

    def test_attach_core_invalidates(self):
        eng, sess, vals = self._engine(seed=4)
        token = sess._mutation_token()
        # Re-attaching any core bumps the fabric's core version.
        core = eng.fabric.cores[0][0]
        eng.fabric.attach_core(0, 0, core)
        assert sess._mutation_token() != token
        assert not sess.valid()
        assert sess.invalidations == 1

    def test_sanitize_run_invalidates(self):
        eng, sess, vals = self._engine(seed=5)
        # ``run(sanitize=True)`` attaches a sanitizer for the call; even
        # on an already-quiescent fabric the attach bumps the sanitize
        # epoch, so the recorded schedule can no longer claim to model
        # what runs next.
        eng.fabric.run(max_cycles=10, sanitize=True)
        assert eng.fabric.sanitizer is None  # detached on return
        assert not sess.valid()
        assert sess.invalidations == 1
        assert any("mutated" in d or "sanit" in d for d in sess.diagnostics)
        ref = AllReduceEngine(4, 3, engine="active")
        t_live, c_live = ref.reduce(vals)
        t, c = eng.reduce(vals)  # re-records on the live engine
        assert (t, c) == (t_live, c_live)
        assert sess.records == 2

    def test_attached_sanitizer_blocks_replay(self):
        eng, sess, vals = self._engine(seed=6)
        eng.fabric.attach_sanitizer()
        try:
            assert not sess.valid()
            ref = AllReduceEngine(4, 3, engine="active")
            t_live, c_live = ref.reduce(vals)
            # Sanitized live run, bit-identical, never replayed.
            t, c = eng.reduce(vals)
            assert (t, c) == (t_live, c_live)
        finally:
            eng.fabric.detach_sanitizer()


# ----------------------------------------------------------------------
# Engine-switch boundaries: skip_cycles / quiescent / on_skip
# ----------------------------------------------------------------------
class TestEngineSwitchBoundaries:
    def test_live_replay_live_timeline_consistency(self):
        obs = ObsSession()
        eng = AllReduceEngine(4, 3, engine="replay")
        observer = obs.observe_fabric("allreduce", eng.fabric)
        rng = np.random.default_rng(12)
        vals = rng.random((3, 4)).astype(np.float32)
        ref = AllReduceEngine(4, 3, engine="active")
        t_ref, c_ref = ref.reduce(vals)

        def consistent():
            return (observer.stepped_cycles + observer.skipped_cycles
                    == eng.fabric.cycle)

        # live (recording) run
        t1, c1 = eng.reduce(vals)
        assert (t1, c1) == (t_ref, c_ref)
        assert eng.fabric.quiescent()
        assert consistent()

        # idle span before the next kernel: O(1) skip, observed via on_skip
        skipped_before = observer.skipped_cycles
        eng.fabric.skip_cycles(7)
        assert observer.skipped_cycles == skipped_before + 7
        assert consistent()

        # replayed run: counters synthesized from the recorded schedule
        t2, c2 = eng.reduce(vals)
        assert (t2, c2) == (t_ref, c_ref)
        assert eng.replay.replays == 1
        assert eng.fabric.quiescent()
        assert consistent()

        # a skip after a replay still works (the replay advanced the
        # clock without stepping; the timeline must not have diverged)
        eng.fabric.skip_cycles(5)
        assert consistent()

        # mutate -> back to live stepping on the same timeline
        eng.fabric.router(0, 0).set_route(15, Port.CORE, (Port.CORE,))
        t3, c3 = eng.reduce(vals)
        assert (t3, c3) == (t_ref, c_ref)
        assert eng.replay.records == 2
        assert eng.fabric.quiescent()
        assert consistent()

    def test_bicgstab_unified_timeline_with_obs(self):
        """The solver's _sync skip/step interleaving stays consistent
        when the spmv fabric flips between live and replay."""
        shape = (3, 3, 6)
        rng = np.random.default_rng(21)
        op = Stencil7.from_random(shape, rng=rng)
        b = rng.standard_normal(shape)
        pre, bprime, _ = op.jacobi_precondition(b)
        obs = ObsSession()
        solver = DESBiCGStab(pre, engine="replay", obs=obs)
        sol = solver.solve(bprime, maxiter=6)
        assert sol.iterations >= 2  # at least one replayed iteration
        for name, observer in obs.fabrics.items():
            fabric = observer.fabric
            assert observer.stepped_cycles + observer.skipped_cycles \
                == fabric.cycle, name
            assert fabric.quiescent(), name
