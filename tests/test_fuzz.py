"""Property-based fuzzing of the fabric, instructions, and solvers.

These tests generate random configurations/programs and check
invariants rather than specific values — the failure-injection and
coverage-widening layer of the suite.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.problems import Stencil7
from repro.solver import bicgstab, bicgstab_grouped
from repro.wse import Fabric, Port
from repro.wse.dsr import Instruction, MemCursor


class _Sink:
    def __init__(self):
        self.received = []
        self._tx = []

    def deliver(self, channel, value):
        self.received.append(value)

    def poll_tx(self, channel):
        return self._tx.pop(0)[1] if self._tx and self._tx[0][0] == channel else None

    def tx_channels(self):
        return [self._tx[0][0]] if self._tx else []

    def step(self):
        return 0

    @property
    def idle(self):
        return not self._tx


class TestFabricFuzz:
    @given(
        st.integers(2, 10),
        st.lists(st.floats(-100, 100, allow_nan=False), min_size=1, max_size=30),
    )
    @settings(max_examples=30, deadline=None)
    def test_line_delivery_order_and_count(self, n, words):
        """Any word sequence over any line length arrives complete and
        in order."""
        f = Fabric(n, 1)
        src, dst = _Sink(), _Sink()
        f.attach_core(0, 0, src)
        f.attach_core(n - 1, 0, dst)
        for x in range(1, n - 1):
            f.attach_core(x, 0, _Sink())
        f.router(0, 0).set_route(0, Port.CORE, (Port.EAST,))
        for x in range(1, n - 1):
            f.router(x, 0).set_route(0, Port.WEST, (Port.EAST,))
        f.router(n - 1, 0).set_route(0, Port.WEST, (Port.CORE,))
        for wv in words:
            src._tx.append((0, wv))
        f.run(max_cycles=10 * (len(words) + n) + 50)
        assert dst.received == words

    @given(st.integers(2, 8), st.integers(2, 8), st.integers(1, 20))
    @settings(max_examples=20, deadline=None)
    def test_broadcast_reaches_all(self, w, h, k):
        """A row+column broadcast tree delivers every word everywhere."""
        f = Fabric(w, h)
        cores = {}
        for y in range(h):
            for x in range(w):
                cores[(x, y)] = _Sink()
                f.attach_core(x, y, cores[(x, y)])
        # Root at (0,0): go east along row 0, every row-0 tile fans north
        # up its column; every tile delivers to its core.
        for x in range(w):
            outs = ["C"]
            if x + 1 < w:
                outs.append(Port.EAST)
            if h > 1:
                outs.append(Port.NORTH)
            in_port = Port.CORE if x == 0 else Port.WEST
            f.router(x, 0).set_route(3, in_port, tuple(outs))
            for y in range(1, h):
                up = ["C"]
                if y + 1 < h:
                    up.append(Port.NORTH)
                f.router(x, y).set_route(3, Port.SOUTH, tuple(up))
        for i in range(k):
            cores[(0, 0)]._tx.append((3, float(i)))
        f.run(max_cycles=20 * (w + h + k) + 100)
        for pos, c in cores.items():
            assert c.received == [float(i) for i in range(k)], pos


class TestInstructionFuzz:
    ops_with_two = st.sampled_from(["mul", "add"])

    @given(
        ops_with_two,
        hnp.arrays(np.float16, st.integers(1, 40),
                   elements=st.floats(-8, 8, allow_nan=False, width=16)),
        st.integers(1, 8),
    )
    @settings(max_examples=40, deadline=None)
    def test_elementwise_ops_match_numpy(self, op, arr, chunk):
        """Stepping in arbitrary chunk sizes must equal the one-shot
        NumPy result."""
        n = len(arr)
        out = np.zeros(n, dtype=np.float16)
        instr = Instruction(
            op=op, dst=MemCursor(out, 0, n),
            srcs=[MemCursor(arr, 0, n), MemCursor(arr.copy(), 0, n)],
            length=n,
        )
        while not instr.finished:
            moved = instr.step(chunk)
            assert moved > 0  # memory ops never stall
        expected = arr * arr if op == "mul" else arr + arr
        np.testing.assert_array_equal(out, expected.astype(np.float16))


class TestSolverFuzz:
    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_grouped_equals_standard_property(self, seed):
        rng = np.random.default_rng(seed)
        op = Stencil7.from_random((4, 4, 4), rng=rng, dominance=1.4)
        b = rng.standard_normal(op.shape)
        a = bicgstab(op, b, rtol=1e-9, maxiter=150)
        g = bicgstab_grouped(op, b, rtol=1e-9, maxiter=150)
        assert a.iterations == g.iterations
        np.testing.assert_array_equal(a.x, g.x)

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_solution_verifies_property(self, seed):
        """Whenever the solver claims convergence, the true residual
        agrees with the claim within round-off."""
        rng = np.random.default_rng(seed)
        op = Stencil7.from_random((4, 4, 4), rng=rng, dominance=1.5)
        b = rng.standard_normal(op.shape)
        res = bicgstab(op, b, rtol=1e-8, maxiter=200)
        if res.converged:
            true = np.linalg.norm((b - op.apply(res.x)).ravel())
            bnorm = np.linalg.norm(b.ravel())
            assert true / bnorm < 1e-6


class TestClusterOverlapAblation:
    def test_overlap_never_slower(self):
        from repro.perfmodel import ClusterModel

        cm = ClusterModel()
        for cores in (1024, 4096, 16384):
            t_block = cm.iteration_time((600, 600, 600), cores)
            t_over = cm.iteration_time((600, 600, 600), cores,
                                       overlap_halo=True)
            assert t_over <= t_block

    def test_overlap_gain_is_marginal(self):
        """The paper's diagnosis: collectives, not halo bandwidth, limit
        strong scaling — hiding the halo buys little."""
        from repro.perfmodel import ClusterModel

        cm = ClusterModel()
        t_block = cm.iteration_time((370, 370, 370), 16384)
        t_over = cm.iteration_time((370, 370, 370), 16384, overlap_halo=True)
        assert (t_block - t_over) / t_block < 0.10
