"""Tests for descriptors (DSRs), instructions, and the core model."""

import numpy as np
import pytest

from repro.wse import CS1, Core
from repro.wse.dsr import (
    Action,
    Completion,
    FabricRx,
    FifoPop,
    FifoPush,
    Instruction,
    MemCursor,
)
from repro.wse.fifo import HardwareFifo


class TestMemCursor:
    def test_sequential_read(self):
        arr = np.arange(5, dtype=np.float16)
        c = MemCursor(arr, 0, 5)
        assert [c.read() for _ in range(5)] == [0, 1, 2, 3, 4]
        assert c.done

    def test_offset_and_stride(self):
        arr = np.arange(10, dtype=np.float16)
        c = MemCursor(arr, 1, 3, stride=2)
        assert [c.read() for _ in range(3)] == [1, 3, 5]

    def test_overrun_rejected_at_construction(self):
        arr = np.zeros(4, dtype=np.float16)
        with pytest.raises(ValueError, match="overruns"):
            MemCursor(arr, 2, 4)

    def test_write_and_peek(self):
        arr = np.zeros(3, dtype=np.float16)
        c = MemCursor(arr, 0, 3)
        c.write(np.float16(2.0))
        assert arr[0] == 2.0
        assert c.peek() == 0.0  # position advanced to index 1

    def test_persistent_position(self):
        """Accumulator descriptors keep position across uses (the sum
        task relies on this)."""
        arr = np.zeros(4, dtype=np.float16)
        c = MemCursor(arr, 0, 4)
        c.write(np.float16(1.0))
        c.write(np.float16(2.0))
        assert c.remaining() == 2
        c.reset()
        assert c.pos == 0


class TestInstruction:
    def test_mul_elementwise_fp16(self):
        a = np.array([1.5, 2.0, 3.0], dtype=np.float16)
        b = np.array([2.0, 0.5, 1.0], dtype=np.float16)
        out = np.zeros(3, dtype=np.float16)
        instr = Instruction(
            op="mul", dst=MemCursor(out, 0, 3),
            srcs=[MemCursor(a, 0, 3), MemCursor(b, 0, 3)], length=3,
        )
        instr.step(10)
        assert instr.finished
        np.testing.assert_array_equal(out, np.array([3.0, 1.0, 3.0], np.float16))

    def test_simd_bound(self):
        a = np.ones(10, dtype=np.float16)
        out = np.zeros(10, dtype=np.float16)
        instr = Instruction(
            op="copy", dst=MemCursor(out, 0, 10),
            srcs=[MemCursor(a, 0, 10)], length=10,
        )
        assert instr.step(4) == 4
        assert not instr.finished
        assert instr.step(4) == 4
        assert instr.step(4) == 2
        assert instr.finished

    def test_addin_reads_current_destination(self):
        acc = np.array([1.0, 2.0], dtype=np.float16)
        src = np.array([10.0, 20.0], dtype=np.float16)
        instr = Instruction(
            op="addin", dst=MemCursor(acc, 0, 2),
            srcs=[MemCursor(src, 0, 2)], length=2,
        )
        instr.step(4)
        np.testing.assert_array_equal(acc, np.array([11.0, 22.0], np.float16))

    def test_stalls_on_missing_fabric_data(self):
        from collections import deque

        q = deque()
        out = np.zeros(3, dtype=np.float16)
        instr = Instruction(
            op="copy", dst=MemCursor(out, 0, 3),
            srcs=[FabricRx(q, 3, channel=0)], length=3,
        )
        assert instr.step(4) == 0
        q.append(np.float16(5.0))
        assert instr.step(4) == 1
        assert out[0] == 5.0

    def test_stalls_on_full_fifo(self):
        fifo = HardwareFifo("f", capacity=2)
        src = np.ones(5, dtype=np.float16)
        instr = Instruction(
            op="copy", dst=FifoPush(fifo, 5),
            srcs=[MemCursor(src, 0, 5)], length=5,
        )
        assert instr.step(8) == 2  # stops at FIFO capacity
        fifo.pop()
        assert instr.step(8) == 1

    def test_bad_op_rejected(self):
        with pytest.raises(ValueError, match="unknown op"):
            Instruction(op="div", dst=None, srcs=[None, None], length=1)

    def test_wrong_arity_rejected(self):
        with pytest.raises(ValueError, match="sources"):
            Instruction(op="mul", dst=None, srcs=[None], length=1)

    def test_fp16_rounding_happens_per_element(self):
        a = np.array([np.float16(1e4)], dtype=np.float16)
        b = np.array([np.float16(1e4)], dtype=np.float16)
        out = np.zeros(1, dtype=np.float16)
        instr = Instruction(
            op="mul", dst=MemCursor(out, 0, 1),
            srcs=[MemCursor(a, 0, 1), MemCursor(b, 0, 1)], length=1,
        )
        with np.errstate(over="ignore"):
            instr.step(1)
        assert np.isinf(out[0])  # 1e8 overflows fp16, as on hardware


class TestCore:
    def _core(self):
        return Core(0, 0, CS1)

    def test_main_queue_in_order(self):
        core = self._core()
        a = np.arange(4, dtype=np.float16)
        out1 = np.zeros(4, dtype=np.float16)
        out2 = np.zeros(4, dtype=np.float16)
        core.launch(Instruction("copy", MemCursor(out1, 0, 4),
                                [MemCursor(a, 0, 4)], 4))
        core.launch(Instruction("copy", MemCursor(out2, 0, 4),
                                [MemCursor(out1, 0, 4)], 4))
        core.step()  # first instruction completes (SIMD-4)
        assert np.all(out1 == a)
        assert np.all(out2 == 0)
        core.step()
        assert np.all(out2 == a)

    def test_thread_slots_enforced(self):
        core = self._core()
        a = np.ones(4, dtype=np.float16)
        out = np.zeros(4, dtype=np.float16)
        instr = Instruction("copy", MemCursor(out, 0, 4), [MemCursor(a, 0, 4)], 4)
        core.launch(instr, thread=0)
        with pytest.raises(RuntimeError, match="occupied"):
            core.launch(instr, thread=0)
        with pytest.raises(ValueError):
            core.launch(instr, thread=99)

    def test_completion_triggers_scheduler(self):
        core = self._core()
        ran = []
        core.scheduler.add("after", lambda c: ran.append(1))
        a = np.ones(2, dtype=np.float16)
        out = np.zeros(2, dtype=np.float16)
        core.launch(
            Instruction("copy", MemCursor(out, 0, 2), [MemCursor(a, 0, 2)], 2,
                        completions=[Completion("after", Action.ACTIVATE)]),
            thread=1,
        )
        core.step()  # instruction completes, fires activation
        core.step()  # scheduler dispatches the task
        assert ran == [1]

    def test_subscribe_fanout(self):
        """A channel with two subscribers delivers every word to both
        (the looped-back local vector's double consumption)."""
        core = self._core()
        q1 = core.subscribe(3)
        q2 = core.subscribe(3)
        core.deliver(3, np.float16(7.0))
        assert list(q1) == [7.0] and list(q2) == [7.0]

    def test_deliver_without_subscriber_raises(self):
        with pytest.raises(RuntimeError, match="no subscriber"):
            self._core().deliver(9, 1.0)

    def test_injection_backpressure(self):
        core = self._core()
        for i in range(core.tx_capacity):
            assert core.inject(0, float(i))
        assert not core.can_inject(0)
        assert not core.inject(0, 99.0)
        assert core.poll_tx(0) == 0.0
        assert core.can_inject(0)

    def test_idle_detection(self):
        core = self._core()
        assert core.idle
        a = np.ones(8, dtype=np.float16)
        out = np.zeros(8, dtype=np.float16)
        core.launch(Instruction("copy", MemCursor(out, 0, 8),
                                [MemCursor(a, 0, 8)], 8), thread=0)
        assert not core.idle
        core.step()
        core.step()
        assert core.idle
