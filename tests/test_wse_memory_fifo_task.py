"""Tests for tile memory, hardware FIFOs, and the task scheduler."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.wse import HardwareFifo, TaskScheduler, TileMemory, TileMemoryError
from repro.wse.dsr import Action


class TestTileMemory:
    def test_capacity_enforced(self):
        mem = TileMemory(100)
        mem.alloc("a", 40, np.float16)  # 80 bytes
        with pytest.raises(TileMemoryError):
            mem.alloc("b", 20, np.float16)  # 40 more bytes > 100

    def test_duplicate_name_rejected(self):
        mem = TileMemory(1000)
        mem.alloc("a", 4)
        with pytest.raises(ValueError):
            mem.alloc("a", 4)

    def test_free_reclaims(self):
        mem = TileMemory(100)
        mem.alloc("a", 50, np.float16)
        mem.free("a")
        assert mem.bytes_used == 0
        mem.alloc("b", 50, np.float16)  # fits again

    def test_free_unknown(self):
        with pytest.raises(KeyError):
            TileMemory(100).free("nope")

    def test_store_and_get(self):
        mem = TileMemory(1024)
        arr = mem.store("v", np.arange(4, dtype=np.float32))
        np.testing.assert_array_equal(mem.get("v"), arr)
        assert "v" in mem

    def test_paper_bicgstab_budget(self):
        """Section IV: 10Z fp16 words at Z=1536 is ~31 KB of 48 KB."""
        mem = TileMemory(48 * 1024)
        z = 1536
        for name in ("xp", "xm", "yp", "ym", "zp", "zm", "x", "p", "s", "y"):
            mem.alloc(name, z, np.float16)
        assert mem.bytes_used == 10 * z * 2 == 30720
        assert mem.bytes_free > 0

    def test_max_z_bound(self):
        """Z beyond ~2457 cannot fit the 10-vector budget."""
        mem = TileMemory(48 * 1024)
        z = 2458
        with pytest.raises(TileMemoryError):
            for i in range(10):
                mem.alloc(f"v{i}", z, np.float16)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            TileMemory(0)

    def test_report_contains_entries(self):
        mem = TileMemory(1024)
        mem.alloc("vec", 8, np.float16)
        assert "vec" in mem.report()

    @given(st.lists(st.integers(1, 64), min_size=1, max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_accounting_invariant(self, sizes):
        mem = TileMemory(1 << 20)
        total = 0
        for i, n in enumerate(sizes):
            mem.alloc(f"a{i}", n, np.float16)
            total += 2 * n
            assert mem.bytes_used == total
            assert mem.bytes_used + mem.bytes_free == mem.capacity


class TestHardwareFifo:
    def test_fifo_order(self):
        f = HardwareFifo("f", 4)
        for v in (1, 2, 3):
            f.push(v)
        assert [f.pop(), f.pop(), f.pop()] == [1, 2, 3]

    def test_capacity(self):
        f = HardwareFifo("f", 2)
        f.push(1)
        f.push(2)
        assert f.full
        with pytest.raises(OverflowError):
            f.push(3)

    def test_pop_empty(self):
        with pytest.raises(IndexError):
            HardwareFifo("f", 2).pop()

    def test_on_push_fires_every_push(self):
        fired = []
        f = HardwareFifo("f", 8, on_push=lambda: fired.append(1))
        f.push(1)
        f.push(2)
        assert len(fired) == 2

    def test_stats(self):
        f = HardwareFifo("f", 4)
        f.push(1)
        f.push(2)
        f.pop()
        f.push(3)
        assert f.total_pushed == 3
        assert f.high_water == 2
        assert len(f) == 2

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            HardwareFifo("f", 0)


class TestTaskScheduler:
    def test_activate_then_dispatch(self):
        s = TaskScheduler()
        ran = []
        s.add("t", lambda core: ran.append("t"))
        s.activate("t")
        s.dispatch(None)
        assert ran == ["t"]

    def test_blocked_task_does_not_run(self):
        s = TaskScheduler()
        ran = []
        s.add("t", lambda core: ran.append("t"), blocked=True)
        s.activate("t")
        s.dispatch(None)
        assert ran == []
        s.unblock("t")
        s.dispatch(None)
        assert ran == ["t"]

    def test_activation_consumed_by_run(self):
        s = TaskScheduler()
        ran = []
        s.add("t", lambda core: ran.append(1))
        s.activate("t")
        s.dispatch(None)
        s.dispatch(None)
        assert len(ran) == 1

    def test_activation_idempotent(self):
        s = TaskScheduler()
        ran = []
        s.add("t", lambda core: ran.append(1))
        s.activate("t")
        s.activate("t")
        s.dispatch(None)
        assert len(ran) == 1

    def test_priority_order(self):
        """The SpMV sum task must outrank the completion tree."""
        s = TaskScheduler()
        order = []
        s.add("tree", lambda core: order.append("tree"), priority=0)
        s.add("sum", lambda core: order.append("sum"), priority=1)
        s.activate("tree")
        s.activate("sum")
        s.dispatch(None)
        assert order == ["sum", "tree"]

    def test_cascading_activation(self):
        s = TaskScheduler()
        order = []
        s.add("b", lambda core: order.append("b"), blocked=True)

        def a_body(core):
            order.append("a")
            s.activate("b")
            s.unblock("b")

        s.add("a", a_body)
        s.activate("a")
        s.dispatch(None)
        assert order == ["a", "b"]

    def test_two_way_barrier_semantics(self):
        """activate + unblock from two different events = a 2-way join."""
        s = TaskScheduler()
        ran = []
        s.add("join", lambda core: ran.append(1), blocked=True)
        s.apply("join", Action.ACTIVATE)
        s.dispatch(None)
        assert not ran  # only one arm arrived
        s.apply("join", Action.UNBLOCK)
        s.dispatch(None)
        assert ran == [1]

    def test_duplicate_task_rejected(self):
        s = TaskScheduler()
        s.add("t", lambda core: None)
        with pytest.raises(ValueError):
            s.add("t", lambda core: None)

    def test_unknown_task_raises(self):
        s = TaskScheduler()
        with pytest.raises(KeyError):
            s.activate("ghost")

    def test_runaway_dispatch_detected(self):
        s = TaskScheduler()
        s.add("loop", lambda core: s.activate("loop"))
        s.activate("loop")
        with pytest.raises(RuntimeError, match="quiesce"):
            s.dispatch(None)
