"""Tests for fabric tracing and utilization statistics."""

import numpy as np
import pytest

from repro.kernels import build_spmv_fabric
from repro.problems import Stencil7
from repro.obs.trace import FabricTrace, trace_run
from repro.wse import Fabric, Port

RNG = np.random.default_rng(101)


class _Src:
    def __init__(self, words):
        self._tx = [(0, w) for w in words]
        self.received = []

    def deliver(self, channel, value):
        self.received.append(value)

    def poll_tx(self, channel):
        return self._tx.pop(0)[1] if self._tx else None

    def tx_channels(self):
        return [0] if self._tx else []

    def step(self):
        return 0

    @property
    def idle(self):
        return not self._tx


def _line(n, k_words):
    f = Fabric(n, 1)
    src = _Src(range(k_words))
    sink = _Src([])
    f.attach_core(0, 0, src)
    f.attach_core(n - 1, 0, sink)
    f.router(0, 0).set_route(0, Port.CORE, (Port.EAST,))
    for x in range(1, n - 1):
        f.attach_core(x, 0, _Src([]))
        f.router(x, 0).set_route(0, Port.WEST, (Port.EAST,))
    f.router(n - 1, 0).set_route(0, Port.WEST, (Port.CORE,))
    return f, sink


class TestFabricTrace:
    def test_words_accounted(self):
        f, sink = _line(4, 10)
        cycles, trace = trace_run(f)
        assert len(sink.received) == 10
        assert trace.total_words == f.total_words_moved
        assert trace.cycles == cycles

    def test_pipeline_utilization(self):
        """A long stream over a short line keeps the pipe nearly full."""
        f, _ = _line(3, 40)
        _, trace = trace_run(f)
        assert trace.utilization() > 0.5

    def test_peak_occupancy_bounded_by_capacity(self):
        f, _ = _line(4, 30)
        _, trace = trace_run(f)
        cap = f.routers[0][0].queue_capacity
        # occupancy is per-router across all queues; a single-channel
        # line can hold at most 2 queues' worth.
        assert 0 < trace.peak_occupancy <= 2 * cap

    def test_busiest_routers_sorted(self):
        f, _ = _line(5, 10)
        _, trace = trace_run(f)
        counts = [n for _, n in trace.busiest_routers(5)]
        assert counts == sorted(counts, reverse=True)

    def test_report_renders(self):
        f, _ = _line(3, 5)
        _, trace = trace_run(f)
        rep = trace.report()
        assert "words/cycle" in rep and "busiest" in rep

    def test_empty_trace(self):
        trace = FabricTrace(Fabric(2, 2))
        assert trace.total_words == 0
        assert trace.utilization() == 0.0
        assert trace.mean_words_per_cycle == 0.0

    def test_timeout_raises(self):
        f, _ = _line(3, 5)
        # sabotage: a word that can never route
        f.router(1, 0).queue_for(9, Port.WEST).append(1.0)
        f.router(1, 0).set_route(9, Port.WEST, (Port.EAST,))
        with pytest.raises(RuntimeError):
            trace_run(f, max_cycles=5)


class TestSpmvTraffic:
    def test_spmv_moves_expected_words(self):
        """Each tile broadcasts Z words; fanout copies count per hop:
        interior tiles deliver to 4 neighbours + loopback."""
        shape = (3, 3, 8)
        op = Stencil7.identity(shape)
        fabric, programs = build_spmv_fabric(op, RNG.standard_normal(shape))
        cycles, trace = trace_run(
            fabric,
            until=lambda f: all(
                programs[j][i].done for j in range(3) for i in range(3)
            ) and f.quiescent(),
        )
        # Every tile injects Z words into its router (one router "move"
        # each as the fanout is a single move), plus one hop per
        # neighbour delivery.
        assert trace.total_words >= 9 * 8  # at least the injections
        assert trace.peak_occupancy <= 8  # bounded queues: no pile-up
