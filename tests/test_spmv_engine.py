"""Tests for the persistent SpMV engine (program reuse across runs)."""

import numpy as np
import pytest

from repro.kernels.spmv3d import SpmvEngine
from repro.problems import Stencil7

RNG = np.random.default_rng(103)


@pytest.fixture(scope="module")
def engine():
    op, _, _ = Stencil7.from_random(
        (3, 3, 8), rng=np.random.default_rng(11)
    ).jacobi_precondition()
    return op, SpmvEngine(op)


class TestSpmvEngine:
    def test_repeated_runs_correct(self, engine):
        """The program is loaded once; every re-activation computes the
        fresh iterate's matvec (the solver-iteration usage pattern)."""
        op, eng = engine
        for _ in range(4):
            v = 0.1 * RNG.standard_normal(op.shape)
            u, _ = eng.run(v)
            v16 = np.asarray(v, np.float16).astype(np.float64)
            ref = (op.to_csr() @ v16.ravel()).reshape(op.shape)
            scale = np.max(np.abs(ref)) + 1.0
            assert np.max(np.abs(u - ref)) < 8 * 2.0**-11 * scale

    def test_cycle_count_stable_across_runs(self, engine):
        op, eng = engine
        v = 0.1 * RNG.standard_normal(op.shape)
        _, c1 = eng.run(v)
        _, c2 = eng.run(v)
        assert c1 == c2

    def test_run_counter(self, engine):
        op, eng = engine
        before = eng.runs
        eng.run(np.zeros(op.shape))
        assert eng.runs == before + 1

    def test_same_input_same_output(self, engine):
        """Determinism: identical inputs give bit-identical results."""
        op, eng = engine
        v = 0.1 * RNG.standard_normal(op.shape)
        u1, _ = eng.run(v)
        u2, _ = eng.run(v)
        np.testing.assert_array_equal(u1, u2)

    def test_matches_one_shot_runner(self, engine):
        from repro.kernels import run_spmv_des

        op, eng = engine
        v = 0.1 * RNG.standard_normal(op.shape)
        u_engine, _ = eng.run(v)
        u_once, _ = run_spmv_des(op, v)
        np.testing.assert_array_equal(u_engine, u_once)

    def test_requires_unit_diagonal(self):
        op = Stencil7.from_random((2, 2, 4), rng=RNG)
        with pytest.raises(ValueError, match="unit main diagonal"):
            SpmvEngine(op)
