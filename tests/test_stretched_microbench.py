"""Tests for stretched-mesh operators and the tile streaming suite."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import run_stream_suite
from repro.problems import (
    convection_diffusion7,
    convection_diffusion7_stretched,
    geometric_spacing,
    stretched_system,
)
from repro.solver import bicgstab

RNG = np.random.default_rng(89)


class TestGeometricSpacing:
    def test_sums_to_length(self):
        w = geometric_spacing(17, 2.5, 1.2)
        assert w.sum() == pytest.approx(2.5)

    def test_uniform_at_ratio_one(self):
        w = geometric_spacing(10, 1.0, 1.0)
        np.testing.assert_allclose(w, 0.1)

    def test_symmetric_grading(self):
        w = geometric_spacing(12, 1.0, 1.3)
        np.testing.assert_allclose(w, w[::-1])

    def test_fine_at_walls(self):
        w = geometric_spacing(12, 1.0, 1.3)
        assert w[0] < w[len(w) // 2]

    def test_odd_count(self):
        w = geometric_spacing(7, 1.0, 1.5)
        assert len(w) == 7
        assert w.sum() == pytest.approx(1.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            geometric_spacing(0)
        with pytest.raises(ValueError):
            geometric_spacing(4, ratio=-1)

    @given(st.integers(1, 40), st.floats(1.0, 2.0))
    @settings(max_examples=30, deadline=None)
    def test_partition_property(self, n, ratio):
        w = geometric_spacing(n, 1.0, ratio)
        assert len(w) == n
        assert w.sum() == pytest.approx(1.0)
        assert np.all(w > 0)


class TestStretchedOperator:
    def test_reduces_to_uniform(self):
        """ratio=1 must reproduce the uniform-mesh discretization."""
        n = 6
        h = 1.0 / n
        widths = tuple(geometric_spacing(n, 1.0, 1.0) for _ in range(3))
        stretched = convection_diffusion7_stretched(
            widths, velocity=(0, 0, 0), diffusivity=0.1
        )
        # Uniform FV diffusion: per-face D*A/d = 0.1 * h^2 / h = 0.1*h.
        uniform = convection_diffusion7(
            (n, n, n), velocity=(0, 0, 0), diffusivity=0.1, spacing=h
        )
        # The uniform generator works per unit volume; rescale by V=h^3.
        for leg in ("xp", "xm", "yp", "ym", "zp", "zm"):
            np.testing.assert_allclose(
                stretched.coeffs[leg], uniform.coeffs[leg] * h**3,
                rtol=1e-12, atol=1e-15,
            )

    def test_m_matrix(self):
        sys_ = stretched_system((10, 10, 10), ratio=1.3)
        op = sys_.operator
        offsum = sum(np.abs(op.coeffs[n]) for n in
                     ("xp", "xm", "yp", "ym", "zp", "zm"))
        assert np.all(op.coeffs["diag"] >= offsum - 1e-12)

    def test_valid_stencil(self):
        sys_ = stretched_system((8, 8, 8), ratio=1.4)
        sys_.operator.validate()

    def test_solvable_in_mixed_after_preconditioning(self):
        """Stretched systems stay wafer-solvable: Jacobi normalizes the
        coefficient contrast the grading introduces."""
        sys_ = stretched_system((10, 10, 10), ratio=1.25).preconditioned()
        res = bicgstab(sys_.operator, sys_.b, precision="mixed",
                       rtol=1e-2, maxiter=100)
        assert res.final_residual < 0.05

    def test_grading_increases_coefficient_contrast(self):
        flat = stretched_system((10, 10, 10), ratio=1.0)
        graded = stretched_system((10, 10, 10), ratio=1.5)

        def contrast(op):
            c = np.abs(op.coeffs["xp"])
            nz = c[c > 0]
            return nz.max() / nz.min()

        assert contrast(graded.operator) > 2 * contrast(flat.operator)

    def test_fp64_solve_accurate(self):
        sys_ = stretched_system((8, 8, 8), ratio=1.2)
        res = bicgstab(sys_.operator, sys_.b, rtol=1e-10, maxiter=500)
        assert res.converged
        assert sys_.relative_residual(res.x) < 1e-8


class TestStreamSuite:
    @pytest.fixture(scope="class")
    def results(self):
        return run_stream_suite((64, 256))

    def test_copy_and_axpy_hit_simd4(self, results):
        """The banks sustain the full SIMD-4 rate for streaming kernels
        (paper section II.A)."""
        for r in results:
            if r.kernel in ("copy", "axpy"):
                assert r.bound == 4
                assert r.utilization > 0.95

    def test_dot_hits_two_per_cycle(self, results):
        for r in results:
            if r.kernel == "dot":
                assert r.bound == 2
                assert r.utilization > 0.95

    def test_rates_stable_across_lengths(self, results):
        by_kernel = {}
        for r in results:
            by_kernel.setdefault(r.kernel, []).append(r.elements_per_cycle)
        for rates in by_kernel.values():
            assert max(rates) / min(rates) < 1.1
