"""Tests for the 2D-mapping SpMV as a tile program (section IV.2 DES)."""

import numpy as np
import pytest

from repro.kernels.spmv2d_des import build_spmv2d_fabric, run_spmv2d_des
from repro.problems import Stencil9
from repro.wse import validate_routing

RNG = np.random.default_rng(83)


def _pre(shape, seed=0):
    op = Stencil9.from_random(shape, rng=np.random.default_rng(seed))
    pre, _, _ = op.jacobi_precondition()
    return pre


def _tol(op, v):
    ref = op.apply(np.asarray(v, np.float16).astype(np.float64))
    return 16 * 2.0**-11 * (np.max(np.abs(ref)) + 1.0)


class TestCorrectness:
    @pytest.mark.parametrize("shape,block", [
        ((8, 8), (4, 4)),
        ((6, 9), (3, 3)),
        ((8, 4), (4, 4)),   # single block row
        ((4, 4), (4, 4)),   # single block: no exchange at all
        ((12, 8), (4, 4)),
        ((8, 8), (2, 4)),   # non-square blocks
    ])
    def test_matches_rowwise_apply(self, shape, block):
        op = _pre(shape)
        v = 0.1 * RNG.standard_normal(shape)
        u, _ = run_spmv2d_des(op, v, block)
        ref = op.apply(np.asarray(v, np.float16).astype(np.float64))
        assert np.max(np.abs(u - ref)) < _tol(op, v)

    def test_corner_coupling_crosses_two_rounds(self):
        """A unit ne-coupling across a block corner must arrive via the
        x-round then the y-round — the no-diagonal-sends property."""
        shape = (4, 4)
        ne = np.zeros(shape)
        ne[1, 1] = 2.0  # row (1,1) couples to its ne neighbour (2,2)
        op = Stencil9({"diag": np.ones(shape), "ne": ne})
        v = np.zeros(shape)
        v[2, 2] = 1.0  # lives in the other 2x2 block, across the corner
        u, _ = run_spmv2d_des(op, v, (2, 2))
        ref = op.apply(v)
        np.testing.assert_allclose(u, ref, atol=1e-3)
        assert ref[1, 1] == 2.0  # the cross-corner contribution is real

    def test_identity(self):
        op = Stencil9({"diag": np.ones((6, 6))})
        v = RNG.standard_normal((6, 6))
        u, _ = run_spmv2d_des(op, v, (3, 3))
        np.testing.assert_allclose(
            u, np.asarray(v, np.float16).astype(np.float64), atol=1e-7
        )

    def test_indivisible_rejected(self):
        op = _pre((8, 8))
        with pytest.raises(ValueError, match="does not tile"):
            run_spmv2d_des(op, np.zeros((8, 8)), (3, 3))


class TestProtocol:
    def test_routing_validates_clean(self):
        op = _pre((8, 8), seed=2)
        fabric, _ = build_spmv2d_fabric(op, np.zeros((8, 8)), (4, 4))
        assert validate_routing(fabric) == []

    def test_rounds_complete_once(self):
        op = _pre((8, 8), seed=3)
        fabric, programs = build_spmv2d_fabric(
            op, 0.1 * RNG.standard_normal((8, 8)), (4, 4)
        )
        fabric.run(max_cycles=100_000, until=lambda f: all(
            programs[j][i].done for j in range(2) for i in range(2)
        ) and f.quiescent())
        core = programs[0][0].core
        assert core.scheduler._tasks["x_done"].runs == 1
        assert core.scheduler._tasks["y_done"].runs == 1

    def test_memory_budget_matches_model(self):
        """The tile allocation must agree with the section IV.2 memory
        model's matrix term: 9 b^2 coefficient words + block + padded
        output."""
        b = 4
        op = _pre((8, 8), seed=4)
        fabric, programs = build_spmv2d_fabric(op, np.zeros((8, 8)), (b, b))
        mem = programs[0][0].core.memory
        expected = 2 * (9 * b * b + b * b + (b + 2) * (b + 2))
        assert mem.bytes_used == expected

    def test_cycles_scale_with_block(self):
        op_small = _pre((8, 8), seed=5)
        op_large = _pre((16, 16), seed=5)
        v8 = 0.1 * RNG.standard_normal((8, 8))
        v16 = 0.1 * RNG.standard_normal((16, 16))
        _, c_small = run_spmv2d_des(op_small, v8, (4, 4))
        _, c_large = run_spmv2d_des(op_large, v16, (8, 8))
        assert c_large > c_small
        assert c_large < 10 * c_small
