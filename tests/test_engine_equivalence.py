"""Engine equivalence: reference sweep vs active-set vs replay.

All three engines must be *observably identical* — same cycle counts,
same per-destination word accounting, same delivered-word sequences,
bit-identical numerics — on every kernel in the repo:

* ``reference`` — the naive full-fabric sweep (``Fabric.step_reference``);
* ``active`` — the event-driven active-set engine (``Fabric.step``);
* ``replay`` — the trace-compiled engine (:mod:`repro.wse.replay`),
  which records one live execution and replays the compiled schedule
  as batched NumPy ops.

The only permitted difference is wall-clock speed.  These tests pin
that contract on randomized workloads (both SpMV mappings, the two-sum
task variant, BLAS, AllReduce, and a full BiCGStab solve), plus the
satellite behaviours that ride on the engine: per-destination fanout
accounting and the immediate deadlock diagnosis in :meth:`Fabric.run`.
"""

import numpy as np
import pytest

from repro.kernels import (
    build_spmv_fabric,
    run_axpy_des,
    run_dot_des,
    run_spmv2d_des,
    run_spmv_des,
)
from repro.problems import Stencil7, Stencil9
from repro.wse import CS1, Core, Fabric, FabricDeadlockError, Port
from repro.wse import dsr
from repro.wse.allreduce import AllReduceEngine, simulate_allreduce
from repro.wse.dsr import FabricRx, Instruction, MemCursor

RNG = np.random.default_rng(7)


def _op3d(shape, seed=0):
    op = Stencil7.from_random(shape, rng=np.random.default_rng(seed))
    pre, _, _ = op.jacobi_precondition()
    return pre


class _Recorder:
    """Minimal core that records every delivered word in order."""

    def __init__(self):
        self.received = []
        self._tx = []

    def deliver(self, channel, value):
        self.received.append((channel, value))

    def poll_tx(self, channel):
        if self._tx and self._tx[0][0] == channel:
            return self._tx.pop(0)[1]
        return None

    def tx_channels(self):
        return [self._tx[0][0]] if self._tx else []

    def step(self):
        return 0

    @property
    def idle(self):
        return not self._tx


# ----------------------------------------------------------------------
# Kernel equivalence: identical cycles, word totals, numerics
# ----------------------------------------------------------------------
class TestKernelEquivalence:
    @pytest.mark.parametrize("shape,seed", [
        ((2, 2, 4), 1), ((4, 4, 8), 2), ((3, 5, 6), 3), ((1, 4, 8), 4),
        ((6, 3, 5), 5),
    ])
    def test_spmv3d(self, shape, seed):
        op = _op3d(shape, seed)
        v = 0.1 * np.random.default_rng(100 + seed).standard_normal(shape)
        results = {}
        for engine in ("active", "reference"):
            fabric, programs = build_spmv_fabric(op, v)
            fabric.engine = engine
            nx, ny, nz = op.shape

            def finished(f, programs=programs, nx=nx, ny=ny):
                return f.quiescent() and all(
                    programs[j][i].done for j in range(ny) for i in range(nx)
                )

            cycles = fabric.run(max_cycles=100_000, until=finished)
            u = np.stack([
                np.stack([programs[j][i].result() for j in range(ny)])
                for i in range(nx)
            ])
            per_router = {
                (x, y): fabric.router(x, y).words_moved
                for y in range(ny) for x in range(nx)
            }
            results[engine] = (cycles, fabric.total_words_moved, per_router, u)

        ca, wa, ra, ua = results["active"]
        cr, wr, rr, ur = results["reference"]
        assert ca == cr
        assert wa == wr
        assert ra == rr  # per-router word accounting, not just the total
        np.testing.assert_array_equal(ua, ur)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_spmv3d_runner_and_legacy_elementwise(self, seed):
        """The public runner agrees across engines, and the pre-PR
        per-element readiness path is numerically identical too."""
        shape = (3, 4, 6)
        op = _op3d(shape, 20 + seed)
        v = 0.1 * np.random.default_rng(seed).standard_normal(shape)
        u_act, c_act = run_spmv_des(op, v, engine="active")
        u_ref, c_ref = run_spmv_des(op, v, engine="reference")
        u_rep, c_rep = run_spmv_des(op, v, engine="replay")
        assert c_act == c_ref == c_rep
        np.testing.assert_array_equal(u_act, u_ref)
        np.testing.assert_array_equal(u_act, u_rep)
        assert not dsr.LEGACY_ELEMENTWISE
        dsr.LEGACY_ELEMENTWISE = True
        try:
            u_leg, c_leg = run_spmv_des(op, v, engine="reference")
        finally:
            dsr.LEGACY_ELEMENTWISE = False
        assert c_leg == c_act
        np.testing.assert_array_equal(u_leg, u_act)

    @pytest.mark.parametrize("shape,block", [
        ((4, 4), (2, 2)), ((6, 6), (2, 3)), ((8, 4), (4, 2)),
    ])
    def test_spmv2d(self, shape, block):
        op = Stencil9.from_random(
            shape, rng=np.random.default_rng(shape[0] * 31 + block[0])
        )
        v = 0.1 * np.random.default_rng(9).standard_normal(shape)
        u_act, c_act = run_spmv2d_des(op, v, block, engine="active")
        u_ref, c_ref = run_spmv2d_des(op, v, block, engine="reference")
        u_rep, c_rep = run_spmv2d_des(op, v, block, engine="replay")
        assert c_act == c_ref == c_rep
        np.testing.assert_array_equal(u_act, u_ref)
        np.testing.assert_array_equal(u_act, u_rep)

    @pytest.mark.parametrize("w,h", [(2, 2), (4, 3), (5, 5), (8, 2)])
    def test_allreduce(self, w, h):
        vals = np.random.default_rng(w * 10 + h).random((h, w)).astype(
            np.float32
        )
        t_act, c_act = simulate_allreduce(vals, engine="active")
        t_ref, c_ref = simulate_allreduce(vals, engine="reference")
        t_rep, c_rep = simulate_allreduce(vals, engine="replay")
        assert c_act == c_ref == c_rep
        assert t_act == t_ref == t_rep  # bit-identical fp32 reduction
        engines = {
            name: AllReduceEngine(w, h, engine=name)
            for name in ("active", "reference", "replay")
        }
        words = {}
        for name, eng in engines.items():
            eng.reduce(vals)
            eng.reduce(vals)  # second call replays on the replay engine
            words[name] = eng.fabric.total_words_moved
        assert words["active"] == words["reference"] == words["replay"]

    def test_blas(self):
        x = np.random.default_rng(1).random(17).astype(np.float16)
        y = np.random.default_rng(2).random(17).astype(np.float16)
        axpy = {e: run_axpy_des(0.7, x, y, engine=e)
                for e in ("active", "reference", "replay")}
        dot = {e: run_dot_des(x, y, engine=e)
               for e in ("active", "reference", "replay")}
        ra, ca = axpy["active"]
        for e in ("reference", "replay"):
            re_, ce = axpy[e]
            assert ce == ca
            np.testing.assert_array_equal(re_, ra)
        da, ca = dot["active"]
        for e in ("reference", "replay"):
            de, ce = dot[e]
            assert ce == ca
            assert de == da

    @pytest.mark.parametrize("engine", ["reference", "replay"])
    def test_spmv3d_two_sum_matrix(self, engine):
        """The two-sum-task SpMV variant across the engine matrix."""
        shape = (3, 3, 6)
        op = _op3d(shape, 31)
        v = 0.1 * np.random.default_rng(32).standard_normal(shape)
        u_act, c_act = run_spmv_des(op, v, two_sum_tasks=True,
                                    engine="active")
        u_e, c_e = run_spmv_des(op, v, two_sum_tasks=True, engine=engine)
        assert c_e == c_act
        np.testing.assert_array_equal(u_e, u_act)

    def test_bicgstab_three_way(self):
        """Full BiCGStab solves agree bit-for-bit across all three
        engines: solution, residual history, per-kernel cycles."""
        from repro.kernels.bicgstab_des import DESBiCGStab

        shape = (3, 3, 6)
        rng = np.random.default_rng(40)
        op = Stencil7.from_random(shape, rng=rng)
        b = rng.standard_normal(shape)
        pre, bprime, _ = op.jacobi_precondition(b)
        sols = {
            e: DESBiCGStab(pre, engine=e).solve(bprime, maxiter=8)
            for e in ("active", "reference", "replay")
        }
        base = sols["active"]
        for e in ("reference", "replay"):
            sol = sols[e]
            np.testing.assert_array_equal(
                np.asarray(base.x).view(np.uint64),
                np.asarray(sol.x).view(np.uint64),
            )
            assert sol.residuals == base.residuals, e
            ra, re_ = base.info["report"], sol.info["report"]
            for f in ("spmv_cycles", "allreduce_cycles", "axpy_cycles",
                      "dot_local_cycles", "spmv_runs", "allreduce_runs"):
                assert getattr(re_, f) == getattr(ra, f), (e, f)

    def test_delivered_word_sequence(self):
        """Word-by-word delivery order matches on a multi-hop line."""
        words = [np.float32(v) for v in
                 np.random.default_rng(3).random(12)]
        received = {}
        for engine in ("active", "reference"):
            f = Fabric(4, 1)
            src, dst = _Recorder(), _Recorder()
            f.attach_core(0, 0, src)
            f.attach_core(3, 0, dst)
            for x in (1, 2):
                f.attach_core(x, 0, _Recorder())
            f.router(0, 0).set_route(0, Port.CORE, (Port.EAST,))
            for x in (1, 2):
                f.router(x, 0).set_route(0, Port.WEST, (Port.EAST,))
            f.router(3, 0).set_route(0, Port.WEST, (Port.CORE,))
            src._tx = [(0, v) for v in words]
            f.engine = engine
            f.run(max_cycles=1000)
            received[engine] = dst.received
        assert received["active"] == received["reference"]
        assert [v for _, v in received["active"]] == words


# ----------------------------------------------------------------------
# Satellite: per-destination fanout word accounting
# ----------------------------------------------------------------------
class TestFanoutAccounting:
    def _fanout_fabric(self, engine):
        """Center tile broadcasts channel 0 to CORE + EAST + WEST: a
        1 -> 3 fanout at one router."""
        f = Fabric(3, 1)
        src = _Recorder()
        east, west = _Recorder(), _Recorder()
        f.attach_core(1, 0, src)
        f.attach_core(2, 0, east)
        f.attach_core(0, 0, west)
        f.router(1, 0).set_route(0, Port.CORE, (Port.CORE, Port.EAST, Port.WEST))
        f.router(2, 0).set_route(0, Port.WEST, (Port.CORE,))
        f.router(0, 0).set_route(0, Port.EAST, (Port.CORE,))
        f.engine = engine
        return f, src, east, west

    @pytest.mark.parametrize("engine", ["active", "reference"])
    def test_one_to_three_fanout_counts_each_destination(self, engine):
        f, src, east, west = self._fanout_fabric(engine)
        src._tx = [(0, 1.5), (0, 2.5)]
        f.run(max_cycles=100)
        # Each injected word is replicated to 3 destinations at the
        # center router, then hops once more into each neighbour core.
        assert src.received == [(0, 1.5), (0, 2.5)]
        assert east.received == [(0, 1.5), (0, 2.5)]
        assert west.received == [(0, 1.5), (0, 2.5)]
        assert f.router(1, 0).words_moved == 2 * 3
        assert f.router(2, 0).words_moved == 2
        assert f.router(0, 0).words_moved == 2
        # Fabric total = sum of per-router, per-destination movements.
        assert f.total_words_moved == 2 * 3 + 2 + 2

    def test_engines_agree_on_fanout_totals(self):
        totals = {}
        for engine in ("active", "reference"):
            f, src, _, _ = self._fanout_fabric(engine)
            src._tx = [(0, float(i)) for i in range(5)]
            f.run(max_cycles=100)
            totals[engine] = (
                f.total_words_moved,
                f.router(1, 0).words_moved,
            )
        assert totals["active"] == totals["reference"]


# ----------------------------------------------------------------------
# Satellite: immediate, diagnosable deadlock errors from run()
# ----------------------------------------------------------------------
class TestDeadlockDiagnosis:
    def test_quiescent_until_never_true(self):
        """A fully drained fabric with an unfinished until() raises at
        once — not a RuntimeError after max_cycles no-op sweeps."""
        f = Fabric(2, 2)
        with pytest.raises(FabricDeadlockError, match="quiescent"):
            f.run(max_cycles=50_000, until=lambda f: False)
        # Failing fast, not timing out: the clock barely advanced.
        assert f.cycle < 10

    def test_stalled_core_is_named(self):
        """A core wedged on a word that can never arrive is diagnosed
        with its coordinates."""
        f = Fabric(2, 1)
        core = Core(0, 0, CS1)
        f.attach_core(0, 0, core)
        q = core.subscribe(5)
        out = np.zeros(4, dtype=np.float32)
        core.launch(Instruction(
            op="copy",
            dst=MemCursor(out, 0, 4, name="out"),
            srcs=[FabricRx(q, 4, 5, name="never")],
            length=4,
            name="starved",
        ), thread=1)
        with pytest.raises(FabricDeadlockError, match=r"\(0,0\)"):
            f.run(max_cycles=50_000)
        assert f.cycle < 10

    def test_deadlock_error_is_runtime_error(self):
        # Callers catching the old RuntimeError keep working.
        assert issubclass(FabricDeadlockError, RuntimeError)
