"""Engine equivalence: reference vs active vs replay vs sharded.

All four engines must be *observably identical* — same cycle counts,
same per-destination word accounting, same delivered-word sequences,
bit-identical numerics — on every kernel in the repo:

* ``reference`` — the naive full-fabric sweep (``Fabric.step_reference``);
* ``active`` — the event-driven active-set engine (``Fabric.step``);
* ``replay`` — the trace-compiled engine (:mod:`repro.wse.replay`),
  which records one live execution and replays the compiled schedule
  as batched NumPy ops;
* ``sharded`` — the conservative barrier-PDES engine
  (:mod:`repro.wse.shard`), which partitions the grid into contiguous
  rectangles and steps each in its own process with boundary words
  exchanged every lookahead round.

The only permitted difference is wall-clock speed.  These tests pin
that contract on randomized workloads (both SpMV mappings, the two-sum
task variant, BLAS, AllReduce, and a full BiCGStab solve), plus the
satellite behaviours that ride on the engine: per-destination fanout
accounting, the immediate deadlock diagnosis in :meth:`Fabric.run` (and
its cross-process propagation), and the seeded-defect check that the
equivalence gate catches a deliberately unsound lookahead.
"""

import numpy as np
import pytest

from repro.api import RunOptions
from repro.kernels import (
    build_spmv_fabric,
    run_axpy_des,
    run_dot_des,
    run_spmv2d_des,
    run_spmv_des,
)
from repro.problems import Stencil7, Stencil9
from repro.wse import CS1, Core, Fabric, FabricDeadlockError, Port
from repro.wse import dsr
from repro.wse.allreduce import AllReduceEngine, simulate_allreduce
from repro.wse.dsr import FabricRx, Instruction, MemCursor
from repro.wse.shard import run_sharded

RNG = np.random.default_rng(7)


def _op3d(shape, seed=0):
    op = Stencil7.from_random(shape, rng=np.random.default_rng(seed))
    pre, _, _ = op.jacobi_precondition()
    return pre


class _Recorder:
    """Minimal core that records every delivered word in order."""

    def __init__(self):
        self.received = []
        self._tx = []

    def deliver(self, channel, value):
        self.received.append((channel, value))

    def poll_tx(self, channel):
        if self._tx and self._tx[0][0] == channel:
            return self._tx.pop(0)[1]
        return None

    def tx_channels(self):
        return [self._tx[0][0]] if self._tx else []

    def step(self):
        return 0

    @property
    def idle(self):
        return not self._tx


# ----------------------------------------------------------------------
# Kernel equivalence: identical cycles, word totals, numerics
# ----------------------------------------------------------------------
class TestKernelEquivalence:
    @pytest.mark.parametrize("shape,seed", [
        ((2, 2, 4), 1), ((4, 4, 8), 2), ((3, 5, 6), 3), ((1, 4, 8), 4),
        ((6, 3, 5), 5),
    ])
    def test_spmv3d(self, shape, seed):
        op = _op3d(shape, seed)
        v = 0.1 * np.random.default_rng(100 + seed).standard_normal(shape)
        results = {}
        for engine in ("active", "reference"):
            fabric, programs = build_spmv_fabric(op, v)
            fabric.engine = engine
            nx, ny, nz = op.shape

            def finished(f, programs=programs, nx=nx, ny=ny):
                return f.quiescent() and all(
                    programs[j][i].done for j in range(ny) for i in range(nx)
                )

            cycles = fabric.run(max_cycles=100_000, until=finished)
            u = np.stack([
                np.stack([programs[j][i].result() for j in range(ny)])
                for i in range(nx)
            ])
            per_router = {
                (x, y): fabric.router(x, y).words_moved
                for y in range(ny) for x in range(nx)
            }
            results[engine] = (cycles, fabric.total_words_moved, per_router, u)

        ca, wa, ra, ua = results["active"]
        cr, wr, rr, ur = results["reference"]
        assert ca == cr
        assert wa == wr
        assert ra == rr  # per-router word accounting, not just the total
        np.testing.assert_array_equal(ua, ur)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_spmv3d_runner_and_legacy_elementwise(self, seed):
        """The public runner agrees across engines, and the pre-PR
        per-element readiness path is numerically identical too."""
        shape = (3, 4, 6)
        op = _op3d(shape, 20 + seed)
        v = 0.1 * np.random.default_rng(seed).standard_normal(shape)
        u_act, c_act = run_spmv_des(op, v, engine="active")
        u_ref, c_ref = run_spmv_des(op, v, engine="reference")
        u_rep, c_rep = run_spmv_des(op, v, engine="replay")
        assert c_act == c_ref == c_rep
        np.testing.assert_array_equal(u_act, u_ref)
        np.testing.assert_array_equal(u_act, u_rep)
        assert not dsr.LEGACY_ELEMENTWISE
        dsr.LEGACY_ELEMENTWISE = True
        try:
            u_leg, c_leg = run_spmv_des(op, v, engine="reference")
        finally:
            dsr.LEGACY_ELEMENTWISE = False
        assert c_leg == c_act
        np.testing.assert_array_equal(u_leg, u_act)

    @pytest.mark.parametrize("shape,block", [
        ((4, 4), (2, 2)), ((6, 6), (2, 3)), ((8, 4), (4, 2)),
    ])
    def test_spmv2d(self, shape, block):
        op = Stencil9.from_random(
            shape, rng=np.random.default_rng(shape[0] * 31 + block[0])
        )
        v = 0.1 * np.random.default_rng(9).standard_normal(shape)
        u_act, c_act = run_spmv2d_des(op, v, block, engine="active")
        u_ref, c_ref = run_spmv2d_des(op, v, block, engine="reference")
        u_rep, c_rep = run_spmv2d_des(op, v, block, engine="replay")
        assert c_act == c_ref == c_rep
        np.testing.assert_array_equal(u_act, u_ref)
        np.testing.assert_array_equal(u_act, u_rep)

    @pytest.mark.parametrize("w,h", [(2, 2), (4, 3), (5, 5), (8, 2)])
    def test_allreduce(self, w, h):
        vals = np.random.default_rng(w * 10 + h).random((h, w)).astype(
            np.float32
        )
        t_act, c_act = simulate_allreduce(vals, engine="active")
        t_ref, c_ref = simulate_allreduce(vals, engine="reference")
        t_rep, c_rep = simulate_allreduce(vals, engine="replay")
        assert c_act == c_ref == c_rep
        assert t_act == t_ref == t_rep  # bit-identical fp32 reduction
        engines = {
            name: AllReduceEngine(w, h, engine=name)
            for name in ("active", "reference", "replay")
        }
        words = {}
        for name, eng in engines.items():
            eng.reduce(vals)
            eng.reduce(vals)  # second call replays on the replay engine
            words[name] = eng.fabric.total_words_moved
        assert words["active"] == words["reference"] == words["replay"]

    def test_blas(self):
        x = np.random.default_rng(1).random(17).astype(np.float16)
        y = np.random.default_rng(2).random(17).astype(np.float16)
        axpy = {e: run_axpy_des(0.7, x, y, engine=e)
                for e in ("active", "reference", "replay")}
        dot = {e: run_dot_des(x, y, engine=e)
               for e in ("active", "reference", "replay")}
        ra, ca = axpy["active"]
        for e in ("reference", "replay"):
            re_, ce = axpy[e]
            assert ce == ca
            np.testing.assert_array_equal(re_, ra)
        da, ca = dot["active"]
        for e in ("reference", "replay"):
            de, ce = dot[e]
            assert ce == ca
            assert de == da

    @pytest.mark.parametrize("engine", ["reference", "replay"])
    def test_spmv3d_two_sum_matrix(self, engine):
        """The two-sum-task SpMV variant across the engine matrix."""
        shape = (3, 3, 6)
        op = _op3d(shape, 31)
        v = 0.1 * np.random.default_rng(32).standard_normal(shape)
        u_act, c_act = run_spmv_des(op, v, two_sum_tasks=True,
                                    engine="active")
        u_e, c_e = run_spmv_des(op, v, two_sum_tasks=True, engine=engine)
        assert c_e == c_act
        np.testing.assert_array_equal(u_e, u_act)

    def test_bicgstab_four_way(self):
        """Full BiCGStab solves agree bit-for-bit across all four
        engines: solution, residual history, per-kernel cycles."""
        from repro.kernels.bicgstab_des import DESBiCGStab

        shape = (3, 3, 6)
        rng = np.random.default_rng(40)
        op = Stencil7.from_random(shape, rng=rng)
        b = rng.standard_normal(shape)
        pre, bprime, _ = op.jacobi_precondition(b)
        sols = {}
        for e in ("active", "reference", "replay", "sharded"):
            workers = 2 if e == "sharded" else 1
            solver = DESBiCGStab(
                pre, options=RunOptions(engine=e, workers=workers))
            try:
                sols[e] = solver.solve(bprime, maxiter=8)
            finally:
                solver.close()
        base = sols["active"]
        for e in ("reference", "replay", "sharded"):
            sol = sols[e]
            np.testing.assert_array_equal(
                np.asarray(base.x).view(np.uint64),
                np.asarray(sol.x).view(np.uint64),
            )
            assert sol.residuals == base.residuals, e
            ra, re_ = base.info["report"], sol.info["report"]
            for f in ("spmv_cycles", "allreduce_cycles", "axpy_cycles",
                      "dot_local_cycles", "spmv_runs", "allreduce_runs"):
                assert getattr(re_, f) == getattr(ra, f), (e, f)

    def test_delivered_word_sequence(self):
        """Word-by-word delivery order matches on a multi-hop line."""
        words = [np.float32(v) for v in
                 np.random.default_rng(3).random(12)]
        received = {}
        for engine in ("active", "reference"):
            f = Fabric(4, 1)
            src, dst = _Recorder(), _Recorder()
            f.attach_core(0, 0, src)
            f.attach_core(3, 0, dst)
            for x in (1, 2):
                f.attach_core(x, 0, _Recorder())
            f.router(0, 0).set_route(0, Port.CORE, (Port.EAST,))
            for x in (1, 2):
                f.router(x, 0).set_route(0, Port.WEST, (Port.EAST,))
            f.router(3, 0).set_route(0, Port.WEST, (Port.CORE,))
            src._tx = [(0, v) for v in words]
            f.engine = engine
            f.run(max_cycles=1000)
            received[engine] = dst.received
        assert received["active"] == received["reference"]
        assert [v for _, v in received["active"]] == words


# ----------------------------------------------------------------------
# Satellite: per-destination fanout word accounting
# ----------------------------------------------------------------------
class TestFanoutAccounting:
    def _fanout_fabric(self, engine):
        """Center tile broadcasts channel 0 to CORE + EAST + WEST: a
        1 -> 3 fanout at one router."""
        f = Fabric(3, 1)
        src = _Recorder()
        east, west = _Recorder(), _Recorder()
        f.attach_core(1, 0, src)
        f.attach_core(2, 0, east)
        f.attach_core(0, 0, west)
        f.router(1, 0).set_route(0, Port.CORE, (Port.CORE, Port.EAST, Port.WEST))
        f.router(2, 0).set_route(0, Port.WEST, (Port.CORE,))
        f.router(0, 0).set_route(0, Port.EAST, (Port.CORE,))
        f.engine = engine
        return f, src, east, west

    @pytest.mark.parametrize("engine", ["active", "reference"])
    def test_one_to_three_fanout_counts_each_destination(self, engine):
        f, src, east, west = self._fanout_fabric(engine)
        src._tx = [(0, 1.5), (0, 2.5)]
        f.run(max_cycles=100)
        # Each injected word is replicated to 3 destinations at the
        # center router, then hops once more into each neighbour core.
        assert src.received == [(0, 1.5), (0, 2.5)]
        assert east.received == [(0, 1.5), (0, 2.5)]
        assert west.received == [(0, 1.5), (0, 2.5)]
        assert f.router(1, 0).words_moved == 2 * 3
        assert f.router(2, 0).words_moved == 2
        assert f.router(0, 0).words_moved == 2
        # Fabric total = sum of per-router, per-destination movements.
        assert f.total_words_moved == 2 * 3 + 2 + 2

    def test_engines_agree_on_fanout_totals(self):
        totals = {}
        for engine in ("active", "reference"):
            f, src, _, _ = self._fanout_fabric(engine)
            src._tx = [(0, float(i)) for i in range(5)]
            f.run(max_cycles=100)
            totals[engine] = (
                f.total_words_moved,
                f.router(1, 0).words_moved,
            )
        assert totals["active"] == totals["reference"]


# ----------------------------------------------------------------------
# Satellite: immediate, diagnosable deadlock errors from run()
# ----------------------------------------------------------------------
class TestDeadlockDiagnosis:
    def test_quiescent_until_never_true(self):
        """A fully drained fabric with an unfinished until() raises at
        once — not a RuntimeError after max_cycles no-op sweeps."""
        f = Fabric(2, 2)
        with pytest.raises(FabricDeadlockError, match="quiescent"):
            f.run(max_cycles=50_000, until=lambda f: False)
        # Failing fast, not timing out: the clock barely advanced.
        assert f.cycle < 10

    def test_stalled_core_is_named(self):
        """A core wedged on a word that can never arrive is diagnosed
        with its coordinates."""
        f = Fabric(2, 1)
        core = Core(0, 0, CS1)
        f.attach_core(0, 0, core)
        q = core.subscribe(5)
        out = np.zeros(4, dtype=np.float32)
        core.launch(Instruction(
            op="copy",
            dst=MemCursor(out, 0, 4, name="out"),
            srcs=[FabricRx(q, 4, 5, name="never")],
            length=4,
            name="starved",
        ), thread=1)
        with pytest.raises(FabricDeadlockError, match=r"\(0,0\)"):
            f.run(max_cycles=50_000)
        assert f.cycle < 10

    def test_deadlock_error_is_runtime_error(self):
        # Callers catching the old RuntimeError keep working.
        assert issubclass(FabricDeadlockError, RuntimeError)


# ----------------------------------------------------------------------
# Tentpole: sharded multi-process engine == active, bit for bit
# ----------------------------------------------------------------------
class TestShardedEquivalence:
    """``engine="sharded"`` at 1, 2, and 4 workers against the other
    three engines, plus the seam-placement and seeded-defect checks."""

    WORKERS = [1, 2, 4]

    @pytest.mark.parametrize("workers", WORKERS)
    def test_spmv3d_matrix(self, workers):
        shape = (4, 3, 6)
        op = _op3d(shape, 50 + workers)
        v = 0.1 * np.random.default_rng(60 + workers).standard_normal(shape)
        u_act, c_act = run_spmv_des(op, v, options=RunOptions())
        u_ref, c_ref = run_spmv_des(op, v, options=RunOptions(
            engine="reference"))
        u_rep, c_rep = run_spmv_des(op, v, options=RunOptions(
            engine="replay"))
        u_sh, c_sh = run_spmv_des(op, v, options=RunOptions(
            engine="sharded", workers=workers))
        assert c_sh == c_act == c_ref == c_rep
        np.testing.assert_array_equal(
            np.asarray(u_sh).view(np.uint64),
            np.asarray(u_act).view(np.uint64),
        )
        np.testing.assert_array_equal(u_act, u_ref)
        np.testing.assert_array_equal(u_act, u_rep)

    @pytest.mark.parametrize("workers", WORKERS)
    def test_spmv3d_two_sum_matrix(self, workers):
        shape = (4, 4, 5)
        op = _op3d(shape, 70)
        v = 0.1 * np.random.default_rng(71).standard_normal(shape)
        u_act, c_act = run_spmv_des(op, v, two_sum_tasks=True,
                                    options=RunOptions())
        u_sh, c_sh = run_spmv_des(op, v, two_sum_tasks=True,
                                  options=RunOptions(engine="sharded",
                                                     workers=workers))
        assert c_sh == c_act
        np.testing.assert_array_equal(u_sh, u_act)

    @pytest.mark.parametrize("workers", WORKERS)
    def test_spmv2d_matrix(self, workers):
        op = Stencil9.from_random((6, 6), rng=np.random.default_rng(80))
        v = 0.1 * np.random.default_rng(81).standard_normal((6, 6))
        u_act, c_act = run_spmv2d_des(op, v, (2, 3), options=RunOptions())
        u_sh, c_sh = run_spmv2d_des(op, v, (2, 3), options=RunOptions(
            engine="sharded", workers=workers))
        assert c_sh == c_act
        np.testing.assert_array_equal(u_sh, u_act)

    @pytest.mark.parametrize("workers", WORKERS)
    def test_allreduce_matrix(self, workers):
        vals = np.random.default_rng(90).random((4, 6)).astype(np.float32)
        t_act, c_act = simulate_allreduce(vals, options=RunOptions())
        t_sh, c_sh = simulate_allreduce(vals, options=RunOptions(
            engine="sharded", workers=workers))
        assert c_sh == c_act
        assert t_sh == t_act  # bit-identical fp32 reduction

    def test_allreduce_persistent_stats(self):
        """A persistent engine reduced twice: merged parent-side stats
        equal the monolithic run's, field by field."""
        import dataclasses

        vals = np.random.default_rng(91).random((5, 6))
        stats = {}
        for engine, workers in (("active", 1), ("sharded", 3)):
            eng = AllReduceEngine(6, 5, options=RunOptions(
                engine=engine, workers=workers))
            try:
                eng.reduce(vals)
                eng.reduce(2.0 * vals)
            finally:
                eng.close()
            stats[engine] = (
                dataclasses.asdict(eng.fabric.stats),
                eng.fabric.total_words_moved,
                {(x, y): eng.fabric.router(x, y).words_moved
                 for y in range(5) for x in range(6)},
            )
        assert stats["sharded"] == stats["active"]

    def test_blas_matrix(self):
        """The single-tile BLAS kernels clamp to one shard and still
        agree (result bits and cycles)."""
        x = np.random.default_rng(4).random(19).astype(np.float16)
        y = np.random.default_rng(5).random(19).astype(np.float16)
        r_act, c_act = run_axpy_des(0.3, x, y, options=RunOptions())
        r_sh, c_sh = run_axpy_des(0.3, x, y, options=RunOptions(
            engine="sharded", workers=4))
        assert c_sh == c_act
        np.testing.assert_array_equal(r_sh, r_act)
        d_act, cd_act = run_dot_des(x, y, options=RunOptions())
        d_sh, cd_sh = run_dot_des(x, y, options=RunOptions(
            engine="sharded", workers=4))
        assert cd_sh == cd_act
        assert d_sh == d_act

    # -- seam placement: on and off the stream route -------------------
    def _line_fabric(self, words):
        """A 4x2 grid whose only traffic is a west-to-east stream along
        row 0 — splitting on x puts every seam *on* the route,
        splitting on y keeps both seams *off* it."""
        f = Fabric(4, 2)
        src = _Recorder()
        f.attach_core(0, 0, src)
        for x in (1, 2, 3):
            f.attach_core(x, 0, _Recorder())
        f.router(0, 0).set_route(0, Port.CORE, (Port.EAST,))
        for x in (1, 2):
            f.router(x, 0).set_route(0, Port.WEST, (Port.EAST,))
        f.router(3, 0).set_route(0, Port.WEST, (Port.CORE,))
        src._tx = [(0, v) for v in words]
        return f

    def _line_observables(self, f):
        return (
            f.cycle,
            f.total_words_moved,
            {(x, y): f.router(x, y).words_moved
             for y in range(2) for x in range(4)},
        )

    @pytest.mark.parametrize("axis,workers", [
        ("x", 2),   # both seams cut the row-0 stream route
        ("x", 4),   # every link on the route is a seam
        ("y", 2),   # seam between the rows: off-route entirely
    ])
    def test_seams_on_and_off_stream_routes(self, axis, workers):
        words = [np.float32(v) for v in np.random.default_rng(6).random(12)]
        base = self._line_fabric(words)
        base.engine = "active"
        base.run(max_cycles=1000)
        sharded = self._line_fabric(words)
        sharded.engine = "active"
        run_sharded(sharded, workers=workers, axis=axis, max_cycles=1000)
        # Delivered words live in the workers' forked cores (only
        # harvestable state comes back), so the equivalence observables
        # are the clock and the per-router word accounting.
        assert self._line_observables(sharded) == self._line_observables(base)

    # -- seeded defect: the gate catches an unsound lookahead ----------
    def test_wrong_lookahead_is_caught(self):
        """Lookahead 1 is exact; lookahead 2 (more than the 1-cycle
        link latency) must either wedge or visibly diverge — proving
        the equivalence gate is sensitive to the lookahead derivation."""
        shape = (4, 3, 6)
        op = _op3d(shape, 95)
        v = 0.1 * np.random.default_rng(96).standard_normal(shape)
        nx, ny, _nz = op.shape

        def build():
            fabric, programs = build_spmv_fabric(op, v)
            fabric.engine = "active"
            return fabric, programs

        def factory_for(programs):
            def factory(rect):
                tiles = [(i, j) for j in range(ny) for i in range(nx)
                         if rect.contains(i, j)]

                def until(f):
                    return f.quiescent() and all(
                        programs[j][i].done for (i, j) in tiles)

                return until
            return factory

        fabric, programs = build()
        cycles_act = fabric.run(
            max_cycles=100_000,
            until=lambda f: f.quiescent() and all(
                programs[j][i].done for j in range(ny) for i in range(nx)),
        )

        fabric1, programs1 = build()
        cycles_ok = run_sharded(fabric1, factory_for(programs1), workers=2,
                                max_cycles=100_000)
        assert cycles_ok == cycles_act

        fabric2, programs2 = build()
        try:
            cycles_bad = run_sharded(fabric2, factory_for(programs2),
                                     workers=2, max_cycles=100_000,
                                     lookahead=2)
        except (FabricDeadlockError, RuntimeError):
            return  # wedged: caught
        assert cycles_bad != cycles_act  # or it visibly diverged

    # -- deadlock propagation out of worker processes ------------------
    def _starved_fabric(self):
        f = Fabric(2, 1)
        core = Core(0, 0, CS1)
        f.attach_core(0, 0, core)
        q = core.subscribe(5)
        out = np.zeros(4, dtype=np.float32)
        core.launch(Instruction(
            op="copy",
            dst=MemCursor(out, 0, 4, name="out"),
            srcs=[FabricRx(q, 4, 5, name="never")],
            length=4,
            name="starved",
        ), thread=1)
        return f

    def test_worker_deadlock_single_shard_is_verbatim(self):
        f = self._starved_fabric()
        with pytest.raises(FabricDeadlockError, match=r"\(0,0\)") as exc:
            run_sharded(f, workers=1, max_cycles=50_000)
        assert "per-shard" not in str(exc.value)

    def test_worker_deadlock_propagates_per_shard_diagnosis(self):
        f = self._starved_fabric()
        with pytest.raises(FabricDeadlockError) as exc:
            run_sharded(f, workers=2, max_cycles=50_000)
        msg = str(exc.value)
        assert "per-shard diagnosis" in msg
        assert "(0,0)" in msg          # the stalled tile, named
        assert "shard 0" in msg        # ...attributed to its shard

    def test_quiescent_until_never_true_sharded(self):
        f = Fabric(2, 2)
        with pytest.raises(FabricDeadlockError, match="quiescent"):
            run_sharded(f, until_factory=lambda rect: (lambda _f: False),
                        workers=2, max_cycles=50_000)

    def test_cdg_note_survives_worker_propagation(self):
        """A credit-cycle wedge inside the workers still names the
        statically-predicted CDG cycle in the parent's exception."""
        from repro.wse.analyze import (
            analyze_program,
            synthesize_counterexample,
        )

        ring = Fabric(2, 1)
        ring.router(0, 0).set_route(7, Port.EAST, (Port.EAST,))
        ring.router(1, 0).set_route(7, Port.WEST, (Port.WEST,))
        (d,) = analyze_program(ring, passes=("cdg",))
        ce = synthesize_counterexample(ring, d.data)
        ce.engine = "active"
        with pytest.raises(FabricDeadlockError) as exc:
            run_sharded(ce, workers=2, max_cycles=10_000)
        msg = str(exc.value)
        assert "credit" in msg
        assert "ch7" in msg  # the contract's CDG cycle, named in the error
