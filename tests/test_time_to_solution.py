"""Tests for the time-to-solution estimator."""

import numpy as np
import pytest

from repro.perfmodel import SolveCostEstimate, TimeToSolution
from repro.perfmodel.time_to_solution import MIXED_PLATEAU


@pytest.fixture(scope="module")
def tts():
    return TimeToSolution()


GEOM = [1.0 * 0.3**k for k in range(10)]  # clean geometric history


class TestWaferEstimate:
    def test_plain_mixed_above_plateau(self, tts):
        est = tts.wafer_estimate(GEOM, 5e-2, (600, 595, 1536))
        assert est.machine == "CS-1 (mixed)"
        assert est.refinement_outer == 0
        assert est.feasible
        assert est.seconds == pytest.approx(est.iterations * 28.1e-6, rel=0.02)

    def test_refinement_below_plateau(self, tts):
        est = tts.wafer_estimate(GEOM, 1e-10, (600, 595, 1536))
        assert est.machine == "CS-1 (refined)"
        assert est.refinement_outer == 5  # (1e-2)^5 = 1e-10
        assert est.feasible

    def test_refinement_costs_more_than_plain(self, tts):
        plain = tts.wafer_estimate(GEOM, 5e-2, (600, 595, 1536))
        refined = tts.wafer_estimate(GEOM, 1e-10, (600, 595, 1536))
        assert refined.seconds > plain.seconds

    def test_stagnant_history_infeasible(self, tts):
        est = tts.wafer_estimate([0.9] * 6, 1e-1, (600, 595, 1536))
        assert not est.feasible


class TestClusterEstimate:
    def test_scales_with_iterations(self, tts):
        e1 = tts.cluster_estimate(GEOM, 1e-2, (600, 600, 600))
        e2 = tts.cluster_estimate(GEOM, 1e-8, (600, 600, 600))
        assert e2.iterations > e1.iterations
        assert e2.seconds > e1.seconds

    def test_core_count_matters(self, tts):
        slow = tts.cluster_estimate(GEOM, 1e-6, (600, 600, 600), cores=1024)
        fast = tts.cluster_estimate(GEOM, 1e-6, (600, 600, 600), cores=16384)
        assert slow.seconds > fast.seconds


class TestCompare:
    def test_speedup_above_plateau_is_headline(self, tts):
        out = tts.compare(GEOM, 5e-2, (600, 595, 1536), (600, 600, 600))
        assert out["speedup"] == pytest.approx(218, rel=0.05)

    def test_refinement_halves_the_gap_not_the_win(self, tts):
        """Below the plateau the wafer pays the refinement tax but still
        wins by two orders of magnitude."""
        out = tts.compare(GEOM, 1e-10, (600, 595, 1536), (600, 600, 600))
        assert out["speedup"] is not None
        assert 20 < out["speedup"] < 218

    def test_infeasible_speedup_is_none(self, tts):
        out = tts.compare([0.9] * 6, 1e-8, (600, 595, 1536))
        assert out["speedup"] is None

    def test_rate_reported(self, tts):
        out = tts.compare(GEOM, 1e-2, (600, 595, 1536))
        assert out["rate"] == pytest.approx(0.3, rel=1e-6)

    def test_plateau_constant_documented(self):
        assert MIXED_PLATEAU == pytest.approx(1e-2)


class TestWithRealSolve:
    def test_end_to_end(self, tts):
        from repro.problems import momentum_system
        from repro.solver import bicgstab

        sys_ = momentum_system((12, 12, 16))
        res = bicgstab(sys_.operator, sys_.b, rtol=1e-8, maxiter=200)
        out = tts.compare(res.residuals, 1e-6, (600, 595, 1536),
                          (600, 600, 600))
        assert out["wafer"].feasible
        assert out["cluster"].feasible
        assert out["speedup"] > 10
