"""Cross-validation against SciPy's sparse solvers.

Independent-oracle tests: our stencil operators assemble to CSR, and
SciPy's own Krylov implementations must agree with ours about the
solutions (not the iteration counts — implementations differ in
stabilization details, which is fine and expected).
"""

import numpy as np
import pytest
import scipy.sparse.linalg as spla

from repro.problems import (
    convection_diffusion_system,
    momentum_system,
    poisson_system,
    stretched_system,
)
from repro.solver import bicgstab, cg


def _scipy_solve(sys_, solver, rtol=1e-10):
    A = sys_.operator.to_csr()
    b = sys_.b.ravel()
    x, info = solver(A, b, rtol=rtol, maxiter=2000)
    assert info == 0, f"scipy solver failed with info={info}"
    return x.reshape(sys_.shape)


class TestAgainstScipy:
    def test_bicgstab_agrees_on_nonsymmetric(self):
        sys_ = convection_diffusion_system((8, 8, 8))
        ours = bicgstab(sys_.operator, sys_.b, rtol=1e-12, maxiter=1000)
        theirs = _scipy_solve(sys_, spla.bicgstab, rtol=1e-12)
        assert ours.converged
        np.testing.assert_allclose(ours.x, theirs, rtol=1e-6, atol=1e-9)

    def test_bicgstab_agrees_on_momentum_system(self):
        sys_ = momentum_system((8, 8, 8))
        ours = bicgstab(sys_.operator, sys_.b, rtol=1e-12, maxiter=500)
        theirs = _scipy_solve(sys_, spla.bicgstab, rtol=1e-12)
        np.testing.assert_allclose(ours.x, theirs, rtol=1e-6, atol=1e-9)

    def test_cg_agrees_on_spd(self):
        sys_ = poisson_system((7, 7, 7), source="random")
        ours = cg(sys_.operator, sys_.b, rtol=1e-12, maxiter=1000)
        theirs = _scipy_solve(sys_, spla.cg, rtol=1e-12)
        np.testing.assert_allclose(ours.x, theirs, rtol=1e-6, atol=1e-9)

    def test_direct_solve_agreement(self):
        """The strongest oracle: a sparse direct solve."""
        sys_ = stretched_system((6, 6, 6), ratio=1.3)
        ours = bicgstab(sys_.operator, sys_.b, rtol=1e-13, maxiter=2000)
        direct = spla.spsolve(sys_.operator.to_csr().tocsc(),
                              sys_.b.ravel()).reshape(sys_.shape)
        assert ours.converged
        np.testing.assert_allclose(ours.x, direct, rtol=1e-7, atol=1e-10)

    def test_wafer_solution_near_direct(self):
        """Mixed-precision wafer solve lands within fp16 distance of the
        exact (direct) solution."""
        from repro.solver import WaferBiCGStab

        sys_ = momentum_system((8, 8, 8))
        direct = spla.spsolve(sys_.operator.to_csr().tocsc(),
                              sys_.b.ravel()).reshape(sys_.shape)
        wafer = WaferBiCGStab().solve(sys_, rtol=1e-3, maxiter=60)
        scale = np.max(np.abs(direct)) + 1e-30
        assert np.max(np.abs(wafer.x - direct)) / scale < 0.02

    def test_operator_norm_consistency(self):
        """||A v|| via our apply equals ||A v|| via CSR for random v."""
        sys_ = convection_diffusion_system((6, 6, 6))
        rng = np.random.default_rng(0)
        A = sys_.operator.to_csr()
        for _ in range(5):
            v = rng.standard_normal(sys_.shape)
            ours = sys_.operator.apply(v).ravel()
            theirs = A @ v.ravel()
            np.testing.assert_allclose(ours, theirs, rtol=1e-12)
