"""Tests for the executable cluster simulator: decomposition, virtual
communication, and the distributed BiCGStab."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustersim import (
    ClusterBiCGStab,
    Decomposition3D,
    VirtualComm,
    choose_rank_grid,
    cluster_bicgstab,
)
from repro.problems import Stencil7, convection_diffusion_system, poisson_system
from repro.solver import bicgstab

RNG = np.random.default_rng(59)


class TestDecomposition:
    def test_grid_product(self):
        g = choose_rank_grid(8, (16, 16, 16))
        assert g[0] * g[1] * g[2] == 8

    def test_prefers_cubic(self):
        assert sorted(choose_rank_grid(8, (64, 64, 64))) == [2, 2, 2]

    def test_impossible_decomposition(self):
        with pytest.raises(ValueError):
            choose_rank_grid(64, (2, 2, 2))

    def test_blocks_tile_exactly(self):
        d = Decomposition3D((10, 9, 8), (2, 3, 2))
        d.validate_cover()

    def test_uneven_split(self):
        d = Decomposition3D((7, 5, 3), (2, 2, 1))
        d.validate_cover()
        shapes = [d.block_shape(r) for r in range(d.nranks)]
        assert sum(np.prod(s) for s in shapes) == 7 * 5 * 3

    def test_rank_coords_roundtrip(self):
        d = Decomposition3D((8, 8, 8), (2, 2, 2))
        for r in range(8):
            assert d.rank_of(*d.rank_coords(r)) == r

    def test_neighbors_symmetric(self):
        d = Decomposition3D((8, 8, 8), (2, 2, 2))
        opposite = {"xp": "xm", "xm": "xp", "yp": "ym", "ym": "yp",
                    "zp": "zm", "zm": "zp"}
        for r in range(d.nranks):
            for direction, nb in d.neighbors(r).items():
                assert d.neighbors(nb)[opposite[direction]] == r

    def test_corner_rank_has_three_neighbors(self):
        d = Decomposition3D((8, 8, 8), (2, 2, 2))
        assert len(d.neighbors(0)) == 3

    def test_invalid_grid(self):
        with pytest.raises(ValueError):
            Decomposition3D((4, 4, 4), (8, 1, 1))

    @given(st.integers(1, 16), st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_cover_property(self, nranks, seed):
        rng = np.random.default_rng(seed)
        shape = tuple(int(rng.integers(4, 12)) for _ in range(3))
        try:
            grid = choose_rank_grid(nranks, shape)
        except ValueError:
            return
        Decomposition3D(shape, grid).validate_cover()


class TestVirtualComm:
    def test_allreduce_sum(self):
        comm = VirtualComm(8)
        vals = RNG.standard_normal(8)
        assert comm.allreduce(vals) == pytest.approx(vals.sum())

    def test_allreduce_synchronizes_clocks(self):
        comm = VirtualComm(4)
        comm.clocks[:] = [1.0, 2.0, 3.0, 4.0]
        comm.allreduce(np.ones(4))
        assert np.all(comm.clocks == comm.clocks[0])
        assert comm.clocks[0] > 4.0

    def test_allreduce_wrong_size(self):
        with pytest.raises(ValueError):
            VirtualComm(4).allreduce(np.ones(3))

    def test_compute_charge_advances_clock(self):
        comm = VirtualComm(2)
        comm.charge_compute(0, 1e9)
        assert comm.clocks[0] > 0
        assert comm.clocks[1] == 0

    def test_exchange_synchronizes_partners(self):
        comm = VirtualComm(3)
        comm.clocks[:] = [0.0, 5.0, 0.0]
        comm.exchange([(0, 1, 1000)])
        assert comm.clocks[0] >= 5.0  # waited for the slow partner
        assert comm.clocks[2] == 0.0  # uninvolved rank untouched

    def test_stats_tracked(self):
        comm = VirtualComm(2)
        comm.exchange([(0, 1, 100)])
        comm.allreduce(np.zeros(2))
        assert comm.messages_sent == 2
        assert comm.bytes_sent == 200
        assert comm.allreduces == 1

    def test_invalid_nranks(self):
        with pytest.raises(ValueError):
            VirtualComm(0)


class TestClusterBiCGStab:
    def test_matches_reference_solution(self):
        sys_ = convection_diffusion_system((12, 12, 12))
        ref = bicgstab(sys_.operator, sys_.b, rtol=1e-10, maxiter=400)
        dist = cluster_bicgstab(sys_.operator, sys_.b, nranks=8,
                                rtol=1e-10, maxiter=400)
        assert dist.converged
        np.testing.assert_allclose(dist.x, ref.x, rtol=1e-6, atol=1e-9)

    @pytest.mark.parametrize("nranks", [1, 2, 4, 6])
    def test_rank_count_invariance(self, nranks):
        """The answer must not depend on the decomposition."""
        sys_ = poisson_system((8, 8, 8), source="random")
        res = cluster_bicgstab(sys_.operator, sys_.b, nranks=nranks,
                               rtol=1e-10, maxiter=300)
        assert res.converged
        assert sys_.relative_residual(res.x) < 1e-8

    def test_scatter_gather_roundtrip(self):
        op = Stencil7.from_random((6, 6, 6), rng=RNG)
        solver = ClusterBiCGStab(op, nranks=4)
        g = RNG.standard_normal(op.shape)
        np.testing.assert_array_equal(solver.gather(solver.scatter(g)), g)

    def test_distributed_spmv_matches_operator(self):
        op = Stencil7.from_random((8, 7, 6), rng=RNG)
        solver = ClusterBiCGStab(op, nranks=4)
        v = RNG.standard_normal(op.shape)
        u = solver.gather(solver._spmv(solver.scatter(v)))
        np.testing.assert_allclose(u, op.apply(v), rtol=1e-12, atol=1e-12)

    def test_virtual_time_reported(self):
        sys_ = poisson_system((8, 8, 8), source="random")
        res = cluster_bicgstab(sys_.operator, sys_.b, nranks=4,
                               rtol=1e-8, maxiter=200)
        assert res.info["virtual_seconds"] > 0
        assert res.info["seconds_per_iteration"] > 0
        assert res.info["bytes_sent"] > 0
        assert res.info["allreduces"] >= 4 * res.iterations

    def test_more_ranks_less_virtual_time_big_problem(self):
        """Strong scaling holds while subdomains stay bandwidth-bound."""
        sys_ = poisson_system((16, 16, 16), source="random")
        t = {}
        for n in (1, 8):
            res = cluster_bicgstab(sys_.operator, sys_.b, nranks=n,
                                   rtol=1e-8, maxiter=100)
            t[n] = res.info["seconds_per_iteration"]
        assert t[8] < t[1]

    def test_grid_mismatch_rejected(self):
        op = Stencil7.from_random((8, 8, 8), rng=RNG)
        with pytest.raises(ValueError):
            ClusterBiCGStab(op, nranks=4, grid=(2, 2, 2))

    def test_zero_rhs(self):
        op = Stencil7.from_random((6, 6, 6), rng=RNG)
        res = ClusterBiCGStab(op, nranks=2).solve(np.zeros(op.shape))
        assert res.converged and res.iterations == 0
