"""Section VIII.B: memory capacity, the process roadmap, and use cases.

Regenerates the discussion's quantitative content: the 18/40/50 GB SRAM
roadmap with what each generation holds; and the four cited compact
applications — pilot-in-the-loop helicopter/ship CFD (real time on ~1 M
cells), wind-turbine shape optimization (sequential campaigns on 14-50 M
cells), the 1,505-run carbon-capture UQ campaign, and full-scale ship
self-propulsion (83 h per case on an engineering cluster).
"""

from repro.analysis import format_table
from repro.perfmodel import (
    APPLICATIONS,
    ROADMAP,
    assess_application,
    max_cube_edge,
    max_meshpoints,
)
from repro.perfmodel.capacity import SOLVER_WORDS_PER_POINT


def _assess_all():
    return [assess_application(app) for app in APPLICATIONS]


def test_capacity_report(benchmark):
    assessments = benchmark(_assess_all)

    print()
    print(format_table(
        ["generation", "SRAM (GB)", "max CFD cells (M)",
         "max cube", "solver-only cells (M)"],
        [(n.name, round(n.sram_gb, 0),
          round(max_meshpoints(n) / 1e6, 0), f"{max_cube_edge(n)}^3",
          round(max_meshpoints(n, SOLVER_WORDS_PER_POINT) / 1e6, 0))
         for n in ROADMAP],
        title="wafer SRAM roadmap (paper: 18 GB -> ~40 GB @7nm -> 50 GB @5nm)",
    ))
    print()
    print(format_table(
        ["application", "cells (M)", "fits", "steps/s", "real-time margin",
         "campaign speedup"],
        [(a.application.name[:42], round(a.application.cells / 1e6, 1),
          "yes" if a.fits else "NO", round(a.steps_per_second, 1),
          "-" if a.realtime_factor is None else f"{a.realtime_factor:.1f}x",
          "-" if a.speedup is None else f"{a.speedup:.0f}x")
         for a in assessments],
        title="section VIII use cases on the CS-1 (campaign model: 2000 "
              "timesteps/run; 'speedup' compares cited wall time)",
    ))

    by = {a.application.name: a for a in assessments}
    heli = next(a for n, a in by.items() if "helicopter" in n)
    assert heli.fits and heli.realtime_factor > 1.0
    assert all(a.fits for a in assessments)
    uq = next(a for n, a in by.items() if "carbon-capture" in n)
    assert uq.speedup > 50
    # The roadmap claims.
    assert [round(n.sram_gb) for n in ROADMAP] == [18, 40, 50]
