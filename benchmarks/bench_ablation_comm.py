"""Ablation: blocking vs batched global reductions (section IV.3).

The paper: "Because we did not use a communication-hiding variant of
BiCGStab, this collective operation is blocking, so we minimized
latency."  This bench quantifies the choice: the grouped-reduction
variant (three synchronizations per iteration instead of four blocking
single-scalar AllReduces) is numerically identical, and the latency
model shows where it would matter — short-Z meshes where collectives
dominate, not the deep-column headline configuration (gain ~5%).
"""

import numpy as np

from repro.analysis import format_table
from repro.perfmodel import WaferPerfModel
from repro.problems import momentum_system
from repro.solver import bicgstab, bicgstab_grouped

MODEL = WaferPerfModel()


def _grouped_solve():
    sys_ = momentum_system((16, 16, 24), reynolds=100.0, dt=0.02)
    return bicgstab_grouped(sys_.operator, sys_.b, precision="mixed",
                            rtol=2e-3, maxiter=60)


def test_ablation_comm_report(benchmark):
    grouped = benchmark.pedantic(_grouped_solve, rounds=3, iterations=1)
    assert grouped.converged

    # Numerical identity with the standard solver.
    sys_ = momentum_system((16, 16, 24), reynolds=100.0, dt=0.02)
    standard = bicgstab(sys_.operator, sys_.b, precision="mixed",
                        rtol=2e-3, maxiter=60)
    assert grouped.iterations == standard.iterations
    assert np.array_equal(grouped.x, standard.x)

    rows = []
    for z in (64, 128, 256, 512, 1024, 1536):
        mesh = (600, 595, z)
        t4 = MODEL.iteration_time_with_schedule(mesh, (1, 1, 1, 1))
        t3 = MODEL.iteration_time_with_schedule(mesh, (1, 2, 2))
        rows.append((z, round(t4 * 1e6, 2), round(t3 * 1e6, 2),
                     f"{(t4 / t3 - 1) * 100:.1f}%"))
    print()
    print(format_table(
        ["Z", "blocking 4x AllReduce (us/iter)", "batched 3 syncs (us/iter)",
         "gain"],
        rows,
        title="collective-schedule ablation on the CS-1 model",
    ))
    print(f"\ngrouped solver: {grouped.info['synchronizations']} "
          f"synchronizations for {grouped.iterations} iterations "
          f"({grouped.info['synchronizations_per_iteration']:.1f}/iter vs "
          "5 for the blocking implementation with its convergence check)")

    # The paper's design point: at Z=1536 the blocking penalty is small
    # (<10%), at Z=64 it is large (>20%).
    t4_small = MODEL.iteration_time_with_schedule((600, 595, 64), (1, 1, 1, 1))
    t3_small = MODEL.iteration_time_with_schedule((600, 595, 64), (1, 2, 2))
    t4_big = MODEL.iteration_time_with_schedule((600, 595, 1536), (1, 1, 1, 1))
    t3_big = MODEL.iteration_time_with_schedule((600, 595, 1536), (1, 2, 2))
    assert t4_small / t3_small > 1.2
    assert t4_big / t3_big < 1.10
