"""Fig. 7: cluster strong scaling, 370^3 mesh.

Regenerates the time-per-BiCGStab-iteration vs core-count series on the
modeled Joule 2.0 cluster, whose defining feature is the *failure to
scale beyond 8K cores* on this smaller mesh.  A live run of the
executable cluster simulator (partitioned arrays, real halo messages,
virtual time) anchors the model at small rank counts.
"""

from repro.analysis import ascii_plot, format_table
from repro.clustersim import cluster_bicgstab
from repro.perfmodel import ClusterModel
from repro.problems import convection_diffusion_system

MESH = (370, 370, 370)
MODEL = ClusterModel()


def _live_small_run():
    sys_ = convection_diffusion_system((24, 24, 24))
    return cluster_bicgstab(sys_.operator, sys_.b, nranks=8, rtol=1e-8,
                            maxiter=60)


def test_fig7_report(benchmark):
    live = benchmark.pedantic(_live_small_run, rounds=3, iterations=1)
    assert live.converged

    curve = MODEL.scaling_curve(MESH)
    print()
    print(format_table(
        ["cores", "time/iter (ms)", "compute (ms)", "halo (ms)",
         "allreduce (ms)", "speedup vs prev"],
        [(r["cores"], r["time_ms"], r["compute_ms"], r["halo_ms"],
          r["allreduce_ms"],
          "-" if r["step_speedup"] is None else round(r["step_speedup"], 2))
         for r in curve],
        title=f"Fig. 7: scaling of solve time on the cluster, {MESH} mesh",
    ))
    print()
    print(ascii_plot(
        [r["cores"] for r in curve],
        {"370^3": [r["time_ms"] for r in curve]},
        logy=True,
        title="time per iteration (ms) vs cores",
    ))
    print(f"\nlive 8-rank simulator run: "
          f"{live.info['seconds_per_iteration'] * 1e3:.3f} ms/iter "
          f"on a 24^3 mesh ({live.info['bytes_sent']} bytes exchanged)")

    # The defining shape: the last doubling gains < 1.55x.
    t8k = next(r["time_ms"] for r in curve if r["cores"] == 8192)
    t16k = next(r["time_ms"] for r in curve if r["cores"] == 16384)
    assert t8k / t16k < 1.55
