"""Fig. 8 / section V.A: cluster strong scaling, 600^3 mesh, and the
CS-1 comparison.

Regenerates: 75 ms per iteration at 1024 cores scaling to ~6 ms at 16 K
cores, and the headline ratio — "about 214 times more than the 28.1
microseconds per iteration that we measured on the CS-1, on a problem
with more than twice as many meshpoints".
"""

import pytest

from repro.analysis import ascii_plot, format_table, paper_vs_measured
from repro.clustersim import cluster_bicgstab
from repro.perfmodel import ClusterModel, WaferPerfModel
from repro.problems import convection_diffusion_system

MESH = (600, 600, 600)
MODEL = ClusterModel()


def _live_run():
    sys_ = convection_diffusion_system((32, 32, 32))
    return cluster_bicgstab(sys_.operator, sys_.b, nranks=16, rtol=1e-8,
                            maxiter=250)


def test_fig8_report(benchmark):
    live = benchmark.pedantic(_live_run, rounds=3, iterations=1)
    assert live.converged

    curve = MODEL.scaling_curve(MESH)
    print()
    print(format_table(
        ["cores", "time/iter (ms)", "compute (ms)", "halo (ms)",
         "allreduce (ms)"],
        [(r["cores"], r["time_ms"], r["compute_ms"], r["halo_ms"],
          r["allreduce_ms"]) for r in curve],
        title=f"Fig. 8: scaling of solve time on the cluster, {MESH} mesh",
    ))
    print()
    print(ascii_plot(
        [r["cores"] for r in curve],
        {"600^3": [r["time_ms"] for r in curve]},
        logy=True,
        title="time per iteration (ms) vs cores",
    ))

    t1024 = MODEL.iteration_time(MESH, 1024)
    t16k = MODEL.iteration_time(MESH, 16384)
    speedup = MODEL.cs1_speedup()
    wafer_meshpoints = 600 * 595 * 1536
    print()
    print(paper_vs_measured([
        {"quantity": "time/iter @1024 cores (ms)", "paper": 75,
         "measured": round(t1024 * 1e3, 1)},
        {"quantity": "time/iter @16K cores (ms)", "paper": "~6",
         "measured": round(t16k * 1e3, 2)},
        {"quantity": "Joule/CS-1 time ratio", "paper": 214,
         "measured": round(speedup, 1),
         "note": "CS-1 mesh has 2.5x the meshpoints, fp16 vs fp64"},
        {"quantity": "CS-1 meshpoints / Joule meshpoints", "paper": ">2x",
         "measured": round(wafer_meshpoints / (600**3), 2)},
    ]))

    assert t1024 == pytest.approx(75e-3, rel=0.05)
    assert t16k == pytest.approx(6e-3, rel=0.10)
    assert speedup == pytest.approx(214, rel=0.06)


def test_wafer_vs_cluster_gap(benchmark):
    """The gap per the models, timed as one call for regression."""
    wm = WaferPerfModel()

    def ratio():
        return MODEL.iteration_time(MESH, 16384) / wm.iteration_time(
            (600, 595, 1536)
        )

    r = benchmark(ratio)
    assert r > 150
