"""Numerics-pass cost benchmark: certified error bounds at scale.

The mixed-precision numerics pass (abstract interpretation over value
ranges and worst-case rounding error, plus :class:`NumericsContract`
synthesis) runs on every ``analyze=True`` build and inside ``make
check``, so — like the other static passes — its cost must stay far
below a simulated run and must not blow up as fabrics grow.  This
benchmark times the pass on the two largest shipped program shapes:

* the paper's headline 48x48 problem under the 2D block mapping
  (16x16 = 256 tiles, 9-leg stencil program on every tile), and
* a 512-tile (32x16 mesh) 3D SpMV mapping.

For each it records the numerics-pass wall seconds, the number of
certified contract entries, the worst certified bound, and the cost of
a ``NumericsContract`` serialization round-trip.  Writes
``BENCH_numerics.json`` and fails if any program analyzes dirty or
loses its contract in the round-trip.  Run directly
(``python benchmarks/bench_numerics.py``) or via ``make bench-smoke``;
``--quick`` shrinks both meshes for CI smoke runs.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.wse.analyze import analyze_program
from repro.wse.analyze.numerics import NumericsContract

SPMV2D_SHAPE = (48, 48)
SPMV2D_BLOCK = (3, 3)
SPMV3D_SHAPE = (32, 16, 2)

QUICK_SPMV2D_SHAPE = (12, 12)
QUICK_SPMV2D_BLOCK = (3, 3)
QUICK_SPMV3D_SHAPE = (8, 8, 4)


def _build_spmv2d(shape, block_shape):
    from repro.kernels.spmv2d_des import build_spmv2d_fabric
    from repro.problems.stencil9 import Stencil9

    op, _b, _dinv = Stencil9.from_random(shape).jacobi_precondition()
    fabric, _programs = build_spmv2d_fabric(
        op, np.zeros(op.shape), block_shape
    )
    return fabric


def _build_spmv3d(shape):
    from repro.kernels.spmv3d import build_spmv_fabric
    from repro.problems.stencil7 import Stencil7

    op, _b, _dinv = Stencil7.from_random(shape).jacobi_precondition()
    fabric, _programs = build_spmv_fabric(op, np.zeros(op.shape))
    return fabric


def _measure(name: str, builder) -> dict:
    t0 = time.perf_counter()
    fabric = builder()
    build_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    report = analyze_program(fabric, passes=("numerics",))
    pass_seconds = time.perf_counter() - t0

    contract = report.numerics
    entries = len(contract.entries) if contract is not None else 0
    worst = contract.worst() if contract is not None else None

    roundtrip_ok = contract is None
    t0 = time.perf_counter()
    if contract is not None:
        reloaded = NumericsContract.from_dict(contract.as_dict())
        roundtrip_ok = reloaded.entries == contract.entries
    roundtrip_seconds = time.perf_counter() - t0

    return {
        "program": name,
        "tiles": fabric.width * fabric.height,
        "build_seconds": round(build_seconds, 4),
        "numerics_seconds": round(pass_seconds, 4),
        "contract_entries": entries,
        "worst_bound": worst[7] if worst else None,
        "roundtrip_seconds": round(roundtrip_seconds, 4),
        "clean": report.ok and roundtrip_ok,
    }


def run(quick: bool = False,
        out_path: str | Path = "BENCH_numerics.json") -> dict:
    shape2d = QUICK_SPMV2D_SHAPE if quick else SPMV2D_SHAPE
    block2d = QUICK_SPMV2D_BLOCK if quick else SPMV2D_BLOCK
    shape3d = QUICK_SPMV3D_SHAPE if quick else SPMV3D_SHAPE

    programs = [
        _measure(
            f"spmv2d-{shape2d[0]}x{shape2d[1]}-b{block2d[0]}x{block2d[1]}",
            lambda: _build_spmv2d(shape2d, block2d),
        ),
        _measure(
            f"spmv3d-{shape3d[0]}x{shape3d[1]}x{shape3d[2]}",
            lambda: _build_spmv3d(shape3d),
        ),
    ]
    result = {
        "benchmark": "numerics_cost",
        "quick": quick,
        "programs": programs,
    }
    Path(out_path).write_text(json.dumps(result, indent=2) + "\n")
    return result


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="small meshes for smoke runs")
    ap.add_argument("--out", default="BENCH_numerics.json")
    args = ap.parse_args(argv)
    result = run(quick=args.quick, out_path=args.out)
    print(json.dumps(result, indent=2))
    dirty = [p["program"] for p in result["programs"] if not p["clean"]]
    if dirty:
        print(f"NUMERICS NOT CLEAN on: {', '.join(dirty)}")
        return 1
    for p in result["programs"]:
        print(
            f"{p['program']}: {p['tiles']} tiles, "
            f"{p['contract_entries']} certified entries "
            f"(worst bound {p['worst_bound']:.3g}) "
            f"in {p['numerics_seconds']}s"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
