"""Table I: operations per meshpoint per BiCGStab iteration.

Regenerates the table's rows (single precision and mixed columns) and
verifies them against both the kernel-structure derivation and an
instrumented live solve.
"""

from repro.analysis import format_table
from repro.perfmodel import derive_counts, measured_counts, table1


def test_table1_report(benchmark):
    measured = benchmark.pedantic(measured_counts, kwargs={"iterations": 4},
                                  rounds=3, iterations=1)

    rows = []
    for r in table1():
        label = f"{r.name} (x{r.count})" if r.count else r.name
        rows.append((label, r.sp_add, r.sp_mul, r.mixed_hp_add,
                     r.mixed_hp_mul, r.mixed_sp_add))
    print()
    print(format_table(
        ["Operation", "SP +", "SP x", "HP +", "HP x", "SP + (mixed)"],
        rows,
        title="Table I: operations per meshpoint per iteration",
    ))
    print()
    print(format_table(
        ["source", "matvec x", "matvec +", "dots/iter"],
        [
            ("paper Table I", 12, 12, 4),
            ("derived from kernels", derive_counts()["matvec_mul"],
             derive_counts()["matvec_add"], 4),
            ("instrumented solver", round(measured["matvec_mul"], 2),
             round(measured["matvec_add"], 2),
             round(measured["dots_per_iteration"], 2)),
        ],
        title="verification",
    ))

    total = table1()[-1]
    assert total.total_single == total.total_mixed == 44
    assert measured["matvec_mul"] == 12
    assert measured["dots_per_iteration"] == 4
