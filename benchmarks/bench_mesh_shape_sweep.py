"""Section V's model application: "predict the effect of changing mesh
size and shape".

Regenerates a mesh-shape sweep from the calibrated performance model:
time per iteration, PFLOPS, and fraction of peak across Z depths and
fabric footprints, showing the two effects the model predicts — deeper
columns amortize the AllReduce (higher efficiency), smaller footprints
waste tiles (lower PFLOPS).
"""

from repro.analysis import format_table
from repro.perfmodel import WaferPerfModel

MODEL = WaferPerfModel()

MESHES = [
    (600, 595, 256),
    (600, 595, 512),
    (600, 595, 1024),
    (600, 595, 1536),
    (600, 595, 2048),
    (300, 300, 1536),
    (150, 150, 1536),
    (602, 595, 2457),  # memory-limit corner
]


def test_mesh_shape_sweep(benchmark):
    records = benchmark(MODEL.sweep_mesh_shape, MESHES)

    print()
    print(format_table(
        ["mesh (X x Y x Z)", "meshpoints", "us/iter", "PFLOPS",
         "frac of peak", "tile KB"],
        [(f"{m['mesh'][0]}x{m['mesh'][1]}x{m['mesh'][2]}",
          m["meshpoints"], round(m["time_us"], 2), round(m["pflops"], 3),
          round(m["fraction_of_peak"], 3), round(m["tile_bytes"] / 1024, 1))
         for m in records],
        title="mesh size/shape sweep (calibrated CS-1 model)",
    ))

    by_mesh = {m["mesh"]: m for m in records}
    # Deeper Z amortizes the collectives.
    assert (by_mesh[(600, 595, 2048)]["fraction_of_peak"]
            > by_mesh[(600, 595, 256)]["fraction_of_peak"])
    # Smaller footprint, fewer flops in flight.
    assert (by_mesh[(150, 150, 1536)]["pflops"]
            < by_mesh[(600, 595, 1536)]["pflops"])
    # The memory-limit corner still fits the 48 KB tile.
    assert by_mesh[(602, 595, 2457)]["tile_bytes"] <= 48 * 1024
