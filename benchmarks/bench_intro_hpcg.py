"""Section I framing: fraction-of-peak on stencil solvers.

The paper opens with the motivation: "on the high-performance conjugate
gradient (HPCG) benchmark, the top 20 performing supercomputers achieve
only 0.5% - 3.1% of their peak floating point performance", against
which the CS-1's ~31% on BiCGStab is the headline contrast.

Regenerates both sides from our models: the cluster's sub-percent
fraction of fp64 peak (memory-bandwidth-bound, as HPCG is) and the
wafer's ~1/3 of fp16 peak, plus the memory-balance explanation.
"""

from repro.analysis import format_table, paper_vs_measured
from repro.perfmodel import ClusterModel, HEADLINE_MESH, WaferPerfModel, cs1_balance

CLUSTER = ClusterModel()
WAFER = WaferPerfModel()


def _fractions():
    rows = []
    for cores in (1024, 4096, 16384):
        frac = CLUSTER.fraction_of_peak((600, 600, 600), cores)
        rows.append((cores, frac))
    return rows


def test_intro_fraction_of_peak(benchmark):
    rows = benchmark(_fractions)

    print()
    print(format_table(
        ["cores", "fraction of fp64 peak"],
        [(c, f"{f * 100:.2f}%") for c, f in rows],
        title="modeled Joule BiCGStab: fraction of peak (HPCG-class regime)",
    ))
    wafer_frac = WAFER.fraction_of_peak(HEADLINE_MESH)
    bal = cs1_balance()
    print()
    print(paper_vs_measured([
        {"quantity": "cluster fraction of peak", "paper": "0.5-3.1% (HPCG top 20)",
         "measured": f"{rows[0][1] * 100:.2f}-{rows[-1][1] * 100:.2f}%",
         "note": "MFIX-class BiCGStab; same bandwidth-bound regime"},
        {"quantity": "CS-1 fraction of peak", "paper": "~33%",
         "measured": f"{wafer_frac * 100:.1f}%"},
        {"quantity": "CS-1 flops per 8B memory word", "paper": "~2.7",
         "measured": round(bal.flops_per_word_memory, 2),
         "note": "the balance that makes the fraction possible"},
    ]))

    # The framing must hold: cluster in the low single-digit percent or
    # below; wafer two orders of magnitude better.
    assert all(f < 0.04 for _, f in rows)
    assert wafer_frac > 0.25
    assert wafer_frac / max(f for _, f in rows) > 10
