"""Section VI.A: CFD-on-the-CS-1 throughput projection.

Regenerates: "Assuming a problem size of 600x600x600 and 15 simple
iterations per time step, and we expect to achieve between 80 and 125
timesteps per second. This places the likely performance of CS-1 above
200 times faster than for MFiX runs on a 16,384-core partition of the
NETL Joule cluster."  A live SIMPLE iteration on the lid-driven cavity
anchors the phase model in executable code.
"""

from repro.analysis import format_table, paper_vs_measured
from repro.cfd import lid_driven_cavity
from repro.perfmodel import SimpleCostModel


def _one_simple_iteration():
    solver = lid_driven_cavity(n=16, reynolds=100.0)
    field = solver.initialize()
    return solver.iterate(field)


def test_cfd_throughput_report(benchmark):
    benchmark.pedantic(_one_simple_iteration, rounds=3, iterations=1)

    model = SimpleCostModel()
    lo, hi = model.timesteps_per_second_range()
    mid = model.timesteps_per_second()
    conservative = SimpleCostModel(include_allreduce=True).timesteps_per_second()

    print()
    print(paper_vs_measured([
        {"quantity": "timesteps/s @600^3, 15 SIMPLE iters",
         "paper": "80-125", "measured": f"{lo:.0f}-{hi:.0f} (mid {mid:.0f})"},
        {"quantity": "speedup vs 16K-core Joule", "paper": "> 200",
         "measured": round(model.joule_speedup(), 0)},
        {"quantity": "timesteps/s incl. AllReduce latency", "paper": "-",
         "measured": round(conservative, 1), "note": "conservative ablation"},
    ]))

    rows = []
    for iters in (5, 10, 15, 20):
        m = SimpleCostModel(simple_iters=iters)
        rows.append((iters, round(m.timesteps_per_second(), 1),
                     round(m.seconds_per_timestep() * 1e3, 2)))
    print()
    print(format_table(
        ["SIMPLE iters/step", "timesteps/s", "ms/timestep"],
        rows,
        title="sensitivity to SIMPLE iterations per timestep (600^3)",
    ))

    assert lo < 125 and hi > 80
    assert model.joule_speedup() > 200
