"""Section VIII.B extensions: roadmap scaling and multi-wafer clustering.

The discussion's forward-looking claims, quantified: process shrinks
grow capacity (18 -> 40 -> 50 GB), and "clustering, with sufficient
bandwidth, of several wafer-scale systems" works — with "sufficient"
made precise as the link rate at which inter-wafer halos hide behind a
slab's compute (~260 GB/s for the headline slab shape).
"""

from repro.analysis import format_table
from repro.perfmodel import MultiWaferModel, ROADMAP, max_meshpoints


def _curve():
    return MultiWaferModel().scaling_curve(8)


def test_multiwafer_report(benchmark):
    curve = benchmark(_curve)

    print()
    print(format_table(
        ["wafers", "mesh", "us/iter", "efficiency", "meshpoints (B)"],
        [(pt.wafers, f"{pt.mesh[0]}x{pt.mesh[1]}x{pt.mesh[2]}",
          round(pt.iteration_seconds * 1e6, 2),
          f"{pt.efficiency * 100:.0f}%",
          round(pt.total_meshpoints / 1e9, 2)) for pt in curve],
        title="multi-wafer weak scaling (300 GB/s boundary links)",
    ))
    m = MultiWaferModel()
    rows = []
    for bw in (50e9, 150e9, 262e9, 500e9):
        eff = MultiWaferModel(link_bandwidth=bw).point(4, 595).efficiency
        rows.append((f"{bw / 1e9:.0f}", f"{eff * 100:.0f}%"))
    print()
    print(format_table(
        ["link GB/s", "4-wafer efficiency"],
        rows,
        title=f"'sufficient bandwidth' threshold: "
              f"{m.sufficient_bandwidth() / 1e9:.0f} GB/s",
    ))
    print()
    print(format_table(
        ["generation", "solver capacity (B points)"],
        [(n.name, round(max_meshpoints(n, 10) * 1 / 1e9, 2)) for n in ROADMAP],
        title="roadmap capacity at the solver's 10 words/point",
    ))

    assert all(pt.efficiency > 0.9 for pt in curve)
    assert curve[-1].total_meshpoints == 8 * curve[0].total_meshpoints
    assert 100e9 < m.sufficient_bandwidth() < 1e12
