"""Sharded engine benchmark: multi-process PDES vs single-process active.

Measures cycles simulated per wall-clock second on the ``des-scale``
workload (a full mixed-precision BiCGStab solve with every SpMV and
AllReduce executed on the word-level fabric simulator, mesh 16 x 16 x 2
— 256 tiles per fabric, 512 across the solve's two persistent fabrics)
for the single-process active engine and the sharded engine
(:mod:`repro.wse.shard`) at 2 and 4 workers, and writes the results to
``BENCH_shard.json``.

Two gates, with very different strictness:

* **Equivalence is unconditional.**  Solution bits, residual
  histories, per-kernel cycle counts, and per-router word counts must
  match the active engine exactly at every worker count, on any host.
  A mismatch exits non-zero — this is the same hard gate the replay
  benchmark applies.

* **Speedup is host-aware.**  The >= 2.5x cycles/sec target at 4
  workers only makes sense where 4 CPUs are actually available
  (:func:`repro.wse.shard.available_workers`); on smaller hosts — CI
  containers here expose a single CPU, where barrier PDES necessarily
  *loses* to in-process stepping — the measured ratio is recorded with
  ``speedup_gate: "skipped"`` and the benchmark still passes.  The
  committed artifact therefore always reports the honest number and
  the CPU count it was measured on.

Run directly (``python benchmarks/bench_shard.py``) or via ``make
bench-smoke``; ``--quick`` shrinks the mesh for CI smoke runs.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.api import RunOptions
from repro.kernels.bicgstab_des import DESBiCGStab
from repro.problems import momentum_system
from repro.wse.shard import available_workers

SHAPE = (16, 16, 2)
QUICK_SHAPE = (6, 6, 2)
RTOL = 5e-3
MAXITER = 12
SPEEDUP_TARGET = 2.5
WORKER_COUNTS = (2, 4)


def _link_words(solver: DESBiCGStab) -> dict:
    """Per-router words_moved for every link of both persistent fabrics."""
    out = {}
    for label, eng in (("spmv", solver._spmv_eng),
                       ("allreduce", solver._ar_eng)):
        if eng is None:
            continue
        fabric = eng.fabric
        out[label] = {
            f"{x},{y}": fabric.router(x, y).words_moved
            for y in range(fabric.height)
            for x in range(fabric.width)
        }
    return out


def _fabric_cycles(solver: DESBiCGStab) -> int:
    total = 0
    for eng in (solver._spmv_eng, solver._ar_eng):
        if eng is not None:
            total += eng.fabric.stats.cycles
    return total


def _kernel_cycles(rep) -> dict:
    return {
        "spmv_cycles": rep.spmv_cycles,
        "allreduce_cycles": rep.allreduce_cycles,
        "axpy_cycles": rep.axpy_cycles,
        "dot_local_cycles": rep.dot_local_cycles,
        "spmv_runs": rep.spmv_runs,
        "allreduce_runs": rep.allreduce_runs,
    }


def run_engine(engine: str, workers: int, op, b) -> dict:
    """One warm-up solve (engine + shard-worker construction), then one
    measured steady-state solve."""
    solver = DESBiCGStab(op, persistent=True, options=RunOptions(
        engine=engine, workers=workers))
    try:
        t0 = time.perf_counter()
        res1 = solver.solve(b, rtol=RTOL, maxiter=MAXITER)
        setup = time.perf_counter() - t0
        snap = {
            "x": np.asarray(res1.x, dtype=np.float64).copy(),
            "residuals": list(res1.residuals),
            "kernel_cycles": _kernel_cycles(solver.report),
            "link_words": _link_words(solver),
        }
        before = _fabric_cycles(solver)
        t0 = time.perf_counter()
        res2 = solver.solve(b, rtol=RTOL, maxiter=MAXITER)
        wall = time.perf_counter() - t0
        cycles = _fabric_cycles(solver) - before
    finally:
        solver.close()
    stats = {
        "workers": workers,
        "wall_seconds": round(wall, 4),
        "setup_seconds": round(setup, 4),
        "fabric_cycles_simulated": cycles,
        "cycles_per_second": round(cycles / wall, 1),
        "iterations": res2.iterations,
    }
    return {"stats": stats, "snap": snap}


def _equivalence(snaps: dict) -> dict:
    base = snaps["active"]
    eq = {}
    for key, s in snaps.items():
        if key == "active":
            continue
        eq[f"x_identical_{key}"] = bool(np.array_equal(
            base["x"].view(np.uint64), s["x"].view(np.uint64)))
        eq[f"residuals_identical_{key}"] = (
            base["residuals"] == s["residuals"])
        eq[f"kernel_cycles_identical_{key}"] = (
            base["kernel_cycles"] == s["kernel_cycles"])
        eq[f"link_words_identical_{key}"] = (
            base["link_words"] == s["link_words"])
    return eq


def run(shape=SHAPE, out_path: str | Path = "BENCH_shard.json",
        worker_counts=WORKER_COUNTS) -> dict:
    sys_ = momentum_system(shape, reynolds=50.0, dt=0.02)
    op, b = sys_.operator, sys_.b

    runs, snaps = {}, {}
    r = run_engine("active", 1, op, b)
    runs["active"], snaps["active"] = r["stats"], r["snap"]
    for w in worker_counts:
        r = run_engine("sharded", w, op, b)
        key = f"sharded_{w}w"
        runs[key], snaps[key] = r["stats"], r["snap"]

    cpus = available_workers()
    top = max(worker_counts)
    speedup = round(
        runs[f"sharded_{top}w"]["cycles_per_second"]
        / runs["active"]["cycles_per_second"], 2)
    gated = cpus >= top
    result = {
        "benchmark": "sharded_des_engine",
        "workload": {
            "mesh": list(shape),
            "fabric": (f"{shape[0]}x{shape[1]} tiles (spmv) + "
                       f"{shape[1]}x{shape[0]} tiles (allreduce)"),
            "tiles_per_fabric": shape[0] * shape[1],
            "rtol": RTOL,
            "maxiter": MAXITER,
            "iterations": runs["active"]["iterations"],
        },
        "host_cpus_available": cpus,
        "active": runs["active"],
        **{k: v for k, v in runs.items() if k != "active"},
        "speedup_cycles_per_second": speedup,
        "speedup_target": SPEEDUP_TARGET,
        "speedup_gate": (
            "enforced" if gated else
            f"skipped (needs >= {top} CPUs, host has {cpus}; barrier PDES "
            "on an oversubscribed host measures scheduling, not scaling)"
        ),
        "equivalence": _equivalence(snaps),
    }
    Path(out_path).write_text(json.dumps(result, indent=2) + "\n")
    return result


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help=f"small mesh {QUICK_SHAPE} for smoke runs")
    ap.add_argument("--out", default="BENCH_shard.json")
    args = ap.parse_args(argv)
    shape = QUICK_SHAPE if args.quick else SHAPE
    result = run(shape=shape, out_path=args.out)
    print(json.dumps(result, indent=2))
    eq = result["equivalence"]
    if not all(eq.values()):
        print("EQUIVALENCE FAILURE between active and sharded runs:", eq)
        return 1
    top = max(WORKER_COUNTS)
    line = (
        f"\n{result['workload']['fabric']}: "
        f"{result[f'sharded_{top}w']['cycles_per_second']:.0f} cycles/s "
        f"(sharded, {top}w) vs "
        f"{result['active']['cycles_per_second']:.0f} cycles/s (active) = "
        f"{result['speedup_cycles_per_second']:.2f}x "
        f"on {result['host_cpus_available']} CPU(s)"
    )
    print(line)
    if result["speedup_gate"] == "enforced" and (
            result["speedup_cycles_per_second"] < SPEEDUP_TARGET):
        print(f"SPEEDUP GATE FAILED: {result['speedup_cycles_per_second']}x "
              f"< {SPEEDUP_TARGET}x at {top} workers")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
