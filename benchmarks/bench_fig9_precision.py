"""Fig. 9: normwise relative residual, mixed fp16/fp32 vs fp32.

Paper: a momentum-equation system from MFIX's timestep discretization on
a 100 x 400 x 100 mesh; "Up to iteration 7 the mixed precision
implementation tracks the 32-bit, but then fails to reduce the residual
further", plateauing near 1e-2 (fp16 machine precision ~1e-3 plus an
order of rounding growth).

Regenerates the two residual series.  Default mesh is the paper's
aspect at half scale (50 x 200 x 50); set REPRO_FIG9_FULL=1 for the full
100 x 400 x 100 run.
"""

import os

import numpy as np

from repro.analysis import ascii_plot, format_table
from repro.problems import fig9_momentum_system
from repro.solver import bicgstab

FULL = os.environ.get("REPRO_FIG9_FULL") == "1"
MESH = (100, 400, 100) if FULL else (50, 200, 50)
ITERS = 15


def _residual_histories():
    sys_ = fig9_momentum_system(shape=MESH)
    mixed = bicgstab(sys_.operator, sys_.b, precision="mixed", rtol=0.0,
                     maxiter=ITERS, record_true_residual=True)
    single = bicgstab(sys_.operator, sys_.b, precision="single", rtol=0.0,
                      maxiter=ITERS, record_true_residual=True)
    return mixed, single


def test_fig9_report(benchmark):
    mixed, single = benchmark.pedantic(_residual_histories, rounds=1,
                                       iterations=1)
    m = np.array(mixed.true_residuals)
    s = np.array(single.true_residuals)
    iters = np.arange(1, len(m) + 1)

    print()
    print(format_table(
        ["iteration", "single precision", "mixed fp16/fp32"],
        [(int(i), float(sv), float(mv)) for i, sv, mv in zip(iters, s, m)],
        title=f"Fig. 9: normwise relative residual, momentum system {MESH}",
        floatfmt=".3e",
    ))
    print()
    print(ascii_plot(
        iters, {"single": s, "mixed": m}, logy=True,
        title="relative residual vs iteration (log scale)",
    ))

    # The figure's shape: early tracking, then a mixed plateau while
    # fp32 continues downward.
    assert np.all(m[:3] < 3 * s[:3] + 1e-6), "mixed must track fp32 early"
    assert s[-1] < m[-1] / 5, "fp32 must end well below the mixed plateau"
    assert 1e-5 < m.min() < 5e-2, "mixed plateau near fp16 precision"
