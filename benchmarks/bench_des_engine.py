"""DES engine benchmark: active-set vs pre-PR stepping on BiCGStab.

Measures cycles simulated per wall-clock second on the
``bench_bicgstab_des`` workload (a full mixed-precision BiCGStab solve
with every SpMV and AllReduce executed on the word-level fabric
simulator) and writes the results to ``BENCH_des.json``.

Two configurations are compared, both producing bit-identical numerics
and identical per-kernel cycle counts (asserted here and proven at
depth by ``tests/test_engine_equivalence.py``):

``legacy`` — the pre-PR engine, reproduced exactly: a fresh fabric is
    built for every SpMV and every AllReduce (there were no persistent
    engines), stepping sweeps every tile every cycle
    (``Fabric.step_reference``), and instruction readiness is evaluated
    per element (``repro.wse.dsr.LEGACY_ELEMENTWISE``).  It simulates
    only the busy kernel windows; the charged local AXPY/dot cycles
    exist solely as counters.

``active`` — the event-driven engine: persistent kernel fabrics, dirty
    active sets, cached route bindings, fused instruction stepping, and
    a unified wafer timeline in which both fabrics advance through
    every cycle of the solve — idle spans are *simulated* by cycle
    skipping (``Fabric.skip_cycles``), which is O(1) because an empty
    active set proves the fabric state cannot change.

The headline ``speedup_cycles_per_second`` is the ratio of fabric
cycles simulated per second between the two.  ``solve_wall_speedup``
(the plain end-to-end wall-clock ratio on the busy windows alone) is
reported alongside so neither number has to be inferred from the other.

Run directly (``python benchmarks/bench_des_engine.py``) or via
``make bench-smoke``; ``--quick`` shrinks the mesh for CI smoke runs.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.kernels.bicgstab_des import DESBiCGStab
from repro.problems import momentum_system
from repro.wse import dsr

#: Benchmark mesh: a 48 x 48 tile fabric (2304 tiles — 36x the largest
#: fabric exercised anywhere else in the test suite) with a thin local
#: Z so the workload is communication-dominated, which is the regime
#: the wafer-scale mapping targets (paper section III: performance is
#: bounded by neighbour and reduction traffic, not local FLOPs).
SHAPE = (48, 48, 2)
QUICK_SHAPE = (6, 6, 8)
RTOL = 5e-3
MAXITER = 25


def _engine_stats(solver: DESBiCGStab):
    """Aggregate FabricStats over the solver's persistent fabrics."""
    agg = {
        "cycles": 0, "skipped_cycles": 0, "active_router_cycles": 0,
        "active_core_cycles": 0, "peak_active_routers": 0,
        "peak_active_cores": 0, "words": 0,
    }
    for eng in (solver._spmv_eng, solver._ar_eng):
        if eng is None:
            continue
        st = eng.fabric.stats
        agg["cycles"] += st.cycles
        agg["skipped_cycles"] += st.skipped_cycles
        agg["active_router_cycles"] += st.active_router_cycles
        agg["active_core_cycles"] += st.active_core_cycles
        agg["peak_active_routers"] = max(
            agg["peak_active_routers"], st.peak_active_routers)
        agg["peak_active_cores"] = max(
            agg["peak_active_cores"], st.peak_active_cores)
        agg["words"] += eng.fabric.total_words_moved
    return agg


def run_legacy(op, b) -> dict:
    """The pre-PR engine: fresh fabrics per kernel call, full sweep,
    per-element instruction stepping."""
    dsr.LEGACY_ELEMENTWISE = True
    try:
        solver = DESBiCGStab(op, engine="reference", persistent=False)
        t0 = time.perf_counter()
        res = solver.solve(b, rtol=RTOL, maxiter=MAXITER)
        wall = time.perf_counter() - t0
    finally:
        dsr.LEGACY_ELEMENTWISE = False
    rep = solver.report
    stepped = rep.spmv_cycles + rep.allreduce_cycles
    return {
        "wall_seconds": round(wall, 4),
        "fabric_cycles_simulated": stepped,
        "cycles_per_second": round(stepped / wall, 1),
        "timeline_cycles": rep.total_cycles,
        "iterations": res.iterations,
        "note": (
            "fresh fabric per kernel call; reference full-tile sweep; "
            "per-element readiness; idle/local-compute cycles are "
            "counters only, never simulated"
        ),
        "_res": res,
        "_report": rep,
    }


def run_active(op, b) -> dict:
    """The active-set engine with persistent fabrics and the unified
    wafer timeline.  The first solve builds and warms the engines
    (reported as setup); the measured solve is steady state."""
    solver = DESBiCGStab(op, engine="active", persistent=True)
    t0 = time.perf_counter()
    solver.solve(b, rtol=RTOL, maxiter=MAXITER)
    setup = time.perf_counter() - t0
    before = _engine_stats(solver)
    t0 = time.perf_counter()
    res = solver.solve(b, rtol=RTOL, maxiter=MAXITER)
    wall = time.perf_counter() - t0
    after = _engine_stats(solver)
    cycles = after["cycles"] - before["cycles"]
    skipped = after["skipped_cycles"] - before["skipped_cycles"]
    stepped = cycles - skipped
    words = after["words"] - before["words"]
    rep = solver.report
    return {
        "wall_seconds": round(wall, 4),
        "setup_seconds": round(setup, 4),
        "fabric_cycles_simulated": cycles,
        "cycles_per_second": round(cycles / wall, 1),
        "stepped_cycles": stepped,
        "skipped_cycles": skipped,
        "words_moved": words,
        "words_per_second": round(words / wall, 1),
        "mean_active_routers": round(
            (after["active_router_cycles"] - before["active_router_cycles"])
            / max(stepped, 1), 2),
        "mean_awake_cores": round(
            (after["active_core_cycles"] - before["active_core_cycles"])
            / max(stepped, 1), 2),
        "peak_active_routers": after["peak_active_routers"],
        "peak_active_cores": after["peak_active_cores"],
        "timeline_cycles": rep.total_cycles,
        "iterations": res.iterations,
        "note": (
            "persistent fabrics; active-set sweep; fused batched "
            "stepping; unified timeline — both fabrics simulate every "
            "solve cycle, idle spans via O(1) cycle skipping"
        ),
        "_res": res,
        "_report": rep,
    }


def run(shape=SHAPE, out_path: str | Path = "BENCH_des.json") -> dict:
    sys_ = momentum_system(shape, reynolds=50.0, dt=0.02)
    op, b = sys_.operator, sys_.b

    legacy = run_legacy(op, b)
    active = run_active(op, b)

    res_l, res_a = legacy.pop("_res"), active.pop("_res")
    rep_l, rep_a = legacy.pop("_report"), active.pop("_report")
    # rep_a accumulated over two solves (warm-up + measured): per-solve
    # kernel cycles must be exactly half, and match legacy's.
    equivalence = {
        "x_identical": bool(np.array_equal(res_l.x, res_a.x)),
        "residuals_identical": res_l.residuals == res_a.residuals,
        "spmv_cycles_match": rep_l.spmv_cycles * 2 == rep_a.spmv_cycles,
        "allreduce_cycles_match":
            rep_l.allreduce_cycles * 2 == rep_a.allreduce_cycles,
    }

    nx, ny, nz = shape
    result = {
        "benchmark": "bicgstab_des_engine",
        "workload": {
            "mesh": list(shape),
            "fabric": f"{nx}x{ny} tiles (spmv) + {ny}x{nx} tiles (allreduce)",
            "tiles_per_fabric": nx * ny,
            "rtol": RTOL,
            "maxiter": MAXITER,
            "iterations": res_a.iterations,
        },
        "legacy": legacy,
        "active": active,
        "speedup_cycles_per_second": round(
            active["cycles_per_second"] / legacy["cycles_per_second"], 2),
        "solve_wall_speedup": round(
            legacy["wall_seconds"] / active["wall_seconds"], 2),
        "equivalence": equivalence,
    }
    Path(out_path).write_text(json.dumps(result, indent=2) + "\n")
    return result


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help=f"small mesh {QUICK_SHAPE} for smoke runs")
    ap.add_argument("--out", default="BENCH_des.json")
    args = ap.parse_args(argv)
    shape = QUICK_SHAPE if args.quick else SHAPE
    result = run(shape=shape, out_path=args.out)
    eq = result["equivalence"]
    print(json.dumps(result, indent=2))
    if not all(eq.values()):
        print("EQUIVALENCE FAILURE between engines:", eq)
        return 1
    print(
        f"\n{result['workload']['fabric']}: "
        f"{result['active']['cycles_per_second']:.0f} cycles/s (active) vs "
        f"{result['legacy']['cycles_per_second']:.0f} cycles/s (legacy) = "
        f"{result['speedup_cycles_per_second']:.1f}x; "
        f"wall {result['solve_wall_speedup']:.1f}x"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
