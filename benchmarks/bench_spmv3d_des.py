"""Listing 1 / Fig. 4: the SpMV dataflow program on the tile simulator.

Not a numbered figure, but the paper's core kernel exposition.  Runs the
discrete task/thread/FIFO simulation of one SpMV, checks it against the
CSR ground truth, and compares its cycle count against the calibrated
performance model's per-SpMV budget.
"""

import numpy as np

from repro.analysis import format_table
from repro.kernels import run_spmv_des
from repro.perfmodel import WaferPerfModel
from repro.problems import Stencil7

RNG = np.random.default_rng(21)
SHAPE = (4, 4, 32)


def _des_run():
    op = Stencil7.from_random(SHAPE, rng=np.random.default_rng(2))
    pre, _, _ = op.jacobi_precondition()
    v = 0.1 * RNG.standard_normal(SHAPE)
    u, cycles = run_spmv_des(pre, v)
    v16 = np.asarray(v, np.float16).astype(np.float64)
    ref = (pre.to_csr() @ v16.ravel()).reshape(SHAPE)
    assert np.max(np.abs(u - ref)) < 0.05
    return cycles


def test_spmv_des_report(benchmark):
    cycles = benchmark.pedantic(_des_run, rounds=3, iterations=1)

    model = WaferPerfModel()
    z = SHAPE[2]
    ideal = 3 * z  # 12 fp16 ops/point at SIMD-4
    budget = model.compute_overhead * ideal
    print()
    print(format_table(
        ["quantity", "cycles"],
        [
            ("fabric-limited lower bound (Z)", z),
            ("discrete simulation", cycles),
            ("ideal issue model (3Z)", ideal),
            ("calibrated model budget", round(budget, 1)),
        ],
        title=f"SpMV cycles, {SHAPE} mesh column (Z={z})",
    ))

    assert z <= cycles <= budget + 40
