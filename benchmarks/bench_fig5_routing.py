"""Fig. 5: the tessellation routing pattern for SpMV.

Regenerates the channel colouring (5 virtual channels, outgoing colour
distinct from all four incoming at every tile) on the full CS-1 fabric
and prints the repeating motif the figure shows.
"""

import numpy as np

from repro.analysis import format_table
from repro.wse import CS1_GEOMETRY, channel_map, verify_tessellation


def _full_fabric_colouring():
    colors = channel_map(CS1_GEOMETRY.fabric_width, CS1_GEOMETRY.fabric_height)
    verify_tessellation(colors[:50, :50])  # property-check a patch
    return colors


def test_fig5_report(benchmark):
    colors = benchmark.pedantic(_full_fabric_colouring, rounds=3, iterations=1)

    print()
    print("Fig. 5: channel (colour) assignment c(x,y) = (x + 2y) mod 5")
    print("repeating 5x5 motif (rows are y, columns x):")
    for y in range(4, -1, -1):
        print("   " + " ".join(str(colors[y, x]) for x in range(5)))
    sample = [(x, y, int(colors[y, x]),
               sorted(int(c) for c in (colors[y, x + 1], colors[y, x - 1],
                                       colors[y + 1, x], colors[y - 1, x])))
              for x, y in [(10, 10), (11, 10), (10, 11)]]
    print()
    print(format_table(
        ["x", "y", "own channel", "incoming channels"],
        sample,
        title="five distinct channels at every tile",
    ))

    assert colors.shape == (595, 602)
    assert set(np.unique(colors)) == {0, 1, 2, 3, 4}
    for x, y, own, incoming in sample:
        assert own not in incoming
        assert len(set(incoming)) == 4
