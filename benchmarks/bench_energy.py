"""Abstract / section I: performance per watt and per rack.

Regenerates the quantitative backing for "The achieved performance per
Watt (at 20 kW) and for the size of the machine (1/3 rack) are beyond
what has been reported for conventional machines on comparable
problems": joules per BiCGStab iteration, GFLOPS/W, and rack count on
both modeled machines.
"""

import pytest

from repro.analysis import format_table
from repro.perfmodel import EnergyModel


def test_energy_report(benchmark):
    model = EnergyModel()
    cmp = benchmark(model.compare)

    print()
    print(format_table(
        ["quantity", "CS-1 (600x595x1536, fp16)", "Joule 16K cores (600^3, fp64)"],
        [
            ("joules / iteration", round(cmp.wafer_joules_per_iteration, 3),
             round(cmp.cluster_joules_per_iteration, 1)),
            ("GFLOPS / W", round(cmp.wafer_gflops_per_watt, 1),
             round(cmp.cluster_gflops_per_watt, 4)),
            ("pJ / flop", round(model.wafer_picojoules_per_flop(), 1),
             round(1e3 / cmp.cluster_gflops_per_watt, 0)),
            ("racks", "1/3", round(cmp.cluster_racks, 1)),
        ],
        title="energy and space per BiCGStab iteration",
    ))
    print(f"\nenergy ratio per iteration: {cmp.energy_ratio:.0f}x "
          "(the time ratio is ~218x; the cluster also draws ~8x the power)")

    assert cmp.wafer_gflops_per_watt == pytest.approx(43.0, rel=0.02)
    assert cmp.wafer_gflops_per_watt / cmp.cluster_gflops_per_watt > 1000
    assert cmp.energy_ratio > cmp.cluster_racks  # sanity: both large
    assert cmp.wafer_racks < 1 < cmp.cluster_racks
