"""Static-analyzer throughput over the shipped kernel programs.

Not a paper figure — tooling health: how long the whole-program
analyzer (routing, flow conservation, task graph, DSR bounds, SRAM
budget, precision lint) takes to verify every program the repo ships,
and that all of them stay clean.  The analyzer is meant to run on every
``analyze=True`` build, so its cost should stay far below a simulated
run of the same program.
"""

import numpy as np

from repro.analysis import format_table
from repro.kernels.spmv3d import build_spmv_fabric
from repro.problems.stencil7 import Stencil7
from repro.wse.analyze import analyze_program
from repro.wse.analyze.lint import lint_reports, shipped_programs


def test_lint_all_shipped(benchmark):
    reports = benchmark(lint_reports)
    assert all(report.ok for _name, report in reports)

    print()
    print(format_table(
        ["program", "diagnostics", "notes"],
        [(name, len(report), len(report.notes)) for name, report in reports],
        title="static analysis over shipped programs (all must be clean)",
    ))


def test_analyze_medium_spmv(benchmark):
    op, _b, _dinv = Stencil7.from_random((8, 8, 16)).jacobi_precondition()
    fabric, _programs = build_spmv_fabric(op, np.zeros(op.shape))

    report = benchmark(analyze_program, fabric)
    assert report.ok

    n_instr = sum(
        1
        for _pos, core in (
            ((x, y), fabric.core(x, y))
            for y in range(fabric.height)
            for x in range(fabric.width)
        )
        for _ in core.program_decl.instructions()
    )
    print(f"\n8x8x16 SpMV: {n_instr} declared instructions analyzed clean")
