"""Headline reproduction (paper section V, abstract).

Paper: BiCGStab on a 600 x 595 x 1536 mesh, 602 x 595 fabric, mixed
fp16/fp32 — 28.1 us per iteration (mean over 171 iterations), 0.86
PFLOPS, about one third of machine peak, at 20 kW.

Regenerates: the measured-results numbers of section V.  The functional
solve runs at a reduced mesh (same physics, same arithmetic); the
wall-clock numbers come from the calibrated machine model, which is
validated against the paper's measurement here.
"""

import numpy as np
import pytest

from repro.analysis import paper_vs_measured
from repro.perfmodel import HEADLINE_MESH, WaferPerfModel
from repro.problems import momentum_system
from repro.solver import WaferBiCGStab

MODEL = WaferPerfModel()
#: Reduced mesh with the headline aspect ratio for the live solve.
SCALED_MESH = (30, 30, 76)


def _run_scaled_solve():
    sys_ = momentum_system(SCALED_MESH, reynolds=100.0, dt=0.05)
    return WaferBiCGStab(model=MODEL).solve(sys_, rtol=5e-3, maxiter=171)


def test_headline_report(benchmark):
    res = benchmark.pedantic(_run_scaled_solve, rounds=3, iterations=1)
    assert res.converged

    t_iter = MODEL.iteration_time(HEADLINE_MESH)
    rows = [
        {"quantity": "time / iteration (us)", "paper": 28.1,
         "measured": round(t_iter * 1e6, 2), "note": "model, 600x595x1536"},
        {"quantity": "achieved PFLOPS", "paper": 0.86,
         "measured": round(MODEL.pflops(HEADLINE_MESH), 3)},
        {"quantity": "fraction of peak", "paper": "~1/3",
         "measured": round(MODEL.fraction_of_peak(HEADLINE_MESH), 3)},
        {"quantity": "GFLOPS / W (20 kW)", "paper": 43.0,
         "measured": round(MODEL.gflops_per_watt(HEADLINE_MESH), 1)},
        {"quantity": "tile storage (KB)", "paper": "~31",
         "measured": round(MODEL.storage_bytes_per_tile(1536) / 1024, 1)},
        {"quantity": "scaled solve iterations", "paper": 171,
         "measured": res.iterations, "note": f"live mixed solve {SCALED_MESH}"},
    ]
    print()
    print(paper_vs_measured(rows))

    assert t_iter == pytest.approx(28.1e-6, rel=0.01)
    assert MODEL.pflops(HEADLINE_MESH) == pytest.approx(0.86, rel=0.01)
    assert 0.28 < MODEL.fraction_of_peak(HEADLINE_MESH) < 0.37


def test_iteration_time_stability(benchmark):
    """Paper: sigma ~ 0.2% of the mean across 171 iterations — our model
    is deterministic; this benchmark times the per-iteration functional
    cost at the scaled mesh to expose regression in the kernels."""
    sys_ = momentum_system(SCALED_MESH, reynolds=100.0, dt=0.05)
    solver = WaferBiCGStab(model=MODEL)

    def one_solve_step():
        return solver.solve(sys_, rtol=0.0, maxiter=3)

    res = benchmark.pedantic(one_solve_step, rounds=3, iterations=1)
    assert res.iterations == 3
