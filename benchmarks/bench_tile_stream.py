"""Section II.A: the tile memory sustains the full SIMD compute rate.

Regenerates the machine-description claims the performance model rests
on, by running the kernels as tile programs ("STREAM on a tile"):
copy and AXPY at the full SIMD-4 rate ("enough to support SIMD-4, AXPY
operations ... that stream two vectors from memory and stream the
result vector back"), the mixed dot at 2 FMAC/cycle.
"""

from repro.analysis import format_table
from repro.kernels import run_stream_suite


def test_tile_stream_report(benchmark):
    results = benchmark.pedantic(
        run_stream_suite, kwargs={"lengths": (64, 256, 1024)},
        rounds=2, iterations=1,
    )

    print()
    print(format_table(
        ["kernel", "length", "cycles", "elements/cycle", "bound",
         "utilization"],
        [(r.kernel, r.length, r.cycles, round(r.elements_per_cycle, 2),
          r.bound, f"{r.utilization * 100:.0f}%") for r in results],
        title="tile streaming kernels vs architectural bounds",
    ))

    for r in results:
        assert r.utilization > 0.9, f"{r.kernel}@{r.length} below rate"
        if r.kernel in ("copy", "axpy"):
            assert r.bound == 4
        else:
            assert r.bound == 2
