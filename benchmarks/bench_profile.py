"""Cycle-profiler overhead benchmark: profiler off vs attached.

Measures the DES BiCGStab workload of ``bench_des_engine`` in two
configurations and writes ``BENCH_profile.json``:

``off`` — no session attached at all: the profiler's entire cost in
    this mode is one ``self.profiler is None`` test per core step (the
    same zero-cost-when-detached discipline the observer holds to, and
    still covered by ``bench_obs_overhead``'s <5% gate).

``profiled`` — an ``ObsSession(profile=True)`` attached: every stepped
    core cycle classified busy / wait_rx / wait_credit / idle, plus the
    regular per-cycle fabric metrics, spans, and telemetry.

Gates (exit 1 on violation):

* numerics must be **bit-identical** with and without the profiler, and
  per-kernel cycle counts must match — profiling may never perturb the
  simulation;
* conservation must hold on every tile of every profiled fabric
  (``busy + wait_rx + wait_credit + idle == stepped``) and each
  fabric's critical path must sum exactly to its elapsed cycles —
  a profile that cannot explain 100% of the run is a bug, not a report;
* the profiled run must stay within ``MAX_PROFILED_OVERHEAD`` (25%) of
  the unprofiled active engine.

Run directly (``python benchmarks/bench_profile.py``) or via ``make
bench-smoke``; ``--quick`` shrinks the mesh for CI smoke runs.
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.kernels.bicgstab_des import DESBiCGStab
from repro.obs import ObsSession
from repro.problems import momentum_system

SHAPE = (48, 48, 2)
QUICK_SHAPE = (6, 6, 8)
RTOL = 5e-3
MAXITER = 25

#: Maximum tolerated slowdown of the profiled run vs the plain active
#: engine (the profiler does real per-cycle classification work; the
#: point of the gate is that it stays cheap enough to leave on).
MAX_PROFILED_OVERHEAD = 0.25


def _fabric_cycles(solver: DESBiCGStab) -> int:
    return sum(
        eng.fabric.stats.cycles
        for eng in (solver._spmv_eng, solver._ar_eng)
        if eng is not None
    )


def _measure(op, b, obs: ObsSession | None) -> dict:
    """One warmed, measured solve; returns timing plus checkables."""
    solver = DESBiCGStab(op, engine="active", persistent=True, obs=obs)
    solver.solve(b, rtol=RTOL, maxiter=MAXITER)  # build + warm engines
    before = _fabric_cycles(solver)
    t0 = time.perf_counter()
    res = solver.solve(b, rtol=RTOL, maxiter=MAXITER)
    wall = time.perf_counter() - t0
    cycles = _fabric_cycles(solver) - before
    return {
        "wall_seconds": round(wall, 4),
        "fabric_cycles_simulated": cycles,
        "cycles_per_second": round(cycles / wall, 1),
        "iterations": res.iterations,
        "_res": res,
        "_report": solver.report,
    }


def _conservation(obs: ObsSession) -> dict:
    """Per-fabric conservation and critical-path exactness checks."""
    out = {}
    for name, prof in obs.profiles.items():
        taxonomy = prof.taxonomy()
        bad_tiles = sum(
            1 for states in taxonomy.values()
            if sum(states.values()) != prof.stepped
        )
        path = prof.critical_path()
        fpath = prof.critical_path_fabric()
        out[name] = {
            "tiles": len(taxonomy),
            "stepped": prof.stepped,
            "conservation_violations": bad_tiles,
            "path_sums_to_stepped":
                sum(s["cycles"] for s in path) == prof.stepped,
            "fabric_path_sums_to_cycles":
                sum(s["cycles"] for s in fpath)
                == prof.fabric.cycle - prof.cycle0,
        }
    return out


def run(shape=SHAPE, out_path: str | Path = "BENCH_profile.json") -> dict:
    sys_ = momentum_system(shape, reynolds=50.0, dt=0.02)
    op, b = sys_.operator, sys_.b

    off = _measure(op, b, obs=None)

    obs = ObsSession(profile=True)
    profiled = _measure(op, b, obs=obs)
    obs.harvest()
    t0 = time.perf_counter()
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = obs.write_chrome_trace(Path(tmp) / "trace.json")
        flame_path = obs.write_flamegraph(Path(tmp) / "flame.txt")
        trace_bytes = trace_path.stat().st_size
        flame_lines = len(flame_path.read_text().splitlines())
    export_seconds = time.perf_counter() - t0

    res_off, res_on = off.pop("_res"), profiled.pop("_res")
    rep_off, rep_on = off.pop("_report"), profiled.pop("_report")
    conservation = _conservation(obs)
    equivalence = {
        "x_identical": bool(np.array_equal(res_off.x, res_on.x)),
        "residuals_identical": res_off.residuals == res_on.residuals,
        "spmv_cycles_match": rep_off.spmv_cycles == rep_on.spmv_cycles,
        "allreduce_cycles_match":
            rep_off.allreduce_cycles == rep_on.allreduce_cycles,
        "conservation_holds": all(
            c["conservation_violations"] == 0
            and c["path_sums_to_stepped"]
            and c["fabric_path_sums_to_cycles"]
            for c in conservation.values()
        ),
    }

    profiled["export_seconds"] = round(export_seconds, 4)
    profiled["trace_json_bytes"] = trace_bytes
    profiled["flamegraph_lines"] = flame_lines

    overhead = off["wall_seconds"] and (
        profiled["wall_seconds"] / off["wall_seconds"] - 1.0
    )
    result = {
        "benchmark": "profile_overhead",
        "workload": {
            "mesh": list(shape),
            "tiles_per_fabric": shape[0] * shape[1],
            "rtol": RTOL,
            "maxiter": MAXITER,
            "iterations": res_on.iterations,
        },
        "off": off,
        "profiled": profiled,
        "profiled_overhead_fraction": round(overhead, 4),
        "conservation": conservation,
        "equivalence": equivalence,
    }
    Path(out_path).write_text(json.dumps(result, indent=2) + "\n")
    return result


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help=f"small mesh {QUICK_SHAPE} for smoke runs")
    ap.add_argument("--out", default="BENCH_profile.json")
    args = ap.parse_args(argv)
    shape = QUICK_SHAPE if args.quick else SHAPE
    result = run(shape=shape, out_path=args.out)
    print(json.dumps(result, indent=2))
    eq = result["equivalence"]
    if not all(eq.values()):
        print("EQUIVALENCE FAILURE under profiling:", eq)
        return 1
    overhead = result["profiled_overhead_fraction"]
    if overhead > MAX_PROFILED_OVERHEAD:
        print(
            f"PROFILER OVERHEAD REGRESSION: profiled run is {overhead:.1%} "
            f"slower than unprofiled (gate: {MAX_PROFILED_OVERHEAD:.0%})"
        )
        return 1
    print(
        f"\nprofiler off {result['off']['cycles_per_second']:.0f} cycles/s, "
        f"attached {result['profiled']['cycles_per_second']:.0f} cycles/s "
        f"({overhead:+.1%}); conservation clean on "
        f"{sum(c['tiles'] for c in result['conservation'].values())} tiles"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
