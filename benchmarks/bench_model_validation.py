"""Section V: "We then present and validate a simple performance model".

Regenerates the validation the paper performs (there against hardware,
here against the word-level simulation): SpMV cycles across Z and
AllReduce cycles across fabric sizes, both against the analytic model.
"""

from repro.analysis import format_table
from repro.perfmodel import ModelValidator


def test_model_validation_report(benchmark):
    validator = ModelValidator()
    outcome = benchmark.pedantic(validator.validate, rounds=2, iterations=1)

    print()
    print(format_table(
        ["Z", "DES cycles", "lower bound (Z)", "model budget", "in envelope"],
        [(p.z, p.des_cycles, int(p.lower_bound), round(p.model_budget, 0),
          "yes" if p.within_envelope else "NO") for p in outcome["spmv"]],
        title="SpMV (Listing 1 program) vs model, 3x3 fabric",
    ))
    print()
    print(format_table(
        ["fabric", "DES cycles", "model cycles", "rel error"],
        [(f"{p.fabric[0]}x{p.fabric[1]}", p.des_cycles, p.model_cycles,
          f"{p.relative_error * 100:.1f}%") for p in outcome["allreduce"]],
        title="AllReduce (Fig. 6 routing) vs latency model",
    ))

    assert outcome["spmv_ok"]
    assert outcome["allreduce_ok"]
