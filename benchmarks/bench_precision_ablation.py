"""Ablation: the precision trade (abstract: "We discuss issues of
memory capacity and floating point precision").

The paper chose fp16 storage + mixed dots.  This bench quantifies the
whole trade on one system:

* **accuracy** — achievable true residual in half / mixed / single /
  double (half demonstrates why the mixed dot instruction exists;
  mixed plateaus near 1e-2; single near 1e-6);
* **speed** — modeled per-iteration time at each precision (fp32 runs
  one FMAC/cycle vs two mixed);
* **capacity** — the largest Z-column per tile at each storage width
  (fp32 halves it: 2457 -> 1228).
"""

import numpy as np

from repro.analysis import format_table
from repro.perfmodel import HEADLINE_MESH, WaferPerfModel
from repro.problems import momentum_system
from repro.solver import bicgstab

MODEL = WaferPerfModel()
PRECISIONS = ("half", "mixed", "single", "double")


def _accuracy_sweep():
    sys_ = momentum_system((12, 12, 16), reynolds=100.0, dt=0.02)
    out = {}
    for prec in PRECISIONS:
        res = bicgstab(sys_.operator, sys_.b, precision=prec, rtol=0.0,
                       maxiter=30, record_true_residual=True)
        out[prec] = min(res.true_residuals) if res.true_residuals else None
    return out


def test_precision_ablation_report(benchmark):
    accuracy = benchmark.pedantic(_accuracy_sweep, rounds=1, iterations=1)

    rows = []
    for prec in PRECISIONS:
        max_z = MODEL.max_z_for_precision(prec)
        # Time at the headline footprint, Z clamped to what fits.
        mesh = (600, 595, min(1536, max_z))
        t = MODEL.iteration_time_for_precision(mesh, prec)
        rows.append((
            prec,
            f"{accuracy[prec]:.1e}" if accuracy[prec] else "-",
            max_z,
            f"{mesh[2]}",
            round(t * 1e6, 1),
        ))
    print()
    print(format_table(
        ["precision", "best true residual", "max Z/tile",
         "Z at headline footprint", "us/iter"],
        rows,
        title="the precision trade: accuracy vs capacity vs speed",
    ))
    print("\nthe paper's choice (mixed): fp16 capacity and near-fp16-peak "
          "speed, with fp32 dots preventing the pure-fp16 accuracy collapse")

    # The trade's shape.  (Half-vs-mixed differs dramatically at the
    # *dot* level — fp16 accumulation of 4096 ones stagnates at 2048,
    # tests/test_precision_ops.py — but on a small well-conditioned
    # solve the ratio structure of BiCGStab masks much of it; here we
    # assert the plateau ordering that always holds.)
    assert accuracy["mixed"] < 2e-2, "mixed reaches the fp16-class plateau"
    assert accuracy["single"] < accuracy["mixed"] / 10
    assert accuracy["double"] < accuracy["single"] / 10
    assert accuracy["half"] > accuracy["single"], "fp16 cannot match fp32"
    assert MODEL.max_z_for_precision("single") == MODEL.max_z_for_precision("mixed") // 2
    t_mixed = MODEL.iteration_time_for_precision(HEADLINE_MESH, "mixed")
    t_single = MODEL.iteration_time_for_precision((600, 595, 1228), "single")
    assert t_mixed == MODEL.iteration_time(HEADLINE_MESH)
    assert t_single > 0
