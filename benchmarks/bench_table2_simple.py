"""Table II: cycles per meshpoint for the SIMPLE phases (excluding the
linear solver).

Regenerates the paper's phase ranges alongside the cycles measured from
our instrumented SIMPLE assembly.  The paper's ranges cover MFIX's full
generality (compressibility, variable properties — hence e.g. the
momentum merge range 25-153); our single-phase incompressible assembly
is expected to land at or below the low end of each range.
"""

from repro.analysis import format_table
from repro.cfd import OpCounter, lid_driven_cavity
from repro.perfmodel import table2


def _measure():
    solver = lid_driven_cavity(n=12, reynolds=100.0)
    solver.counter = OpCounter(enabled=True)
    field = solver.initialize()
    solver.iterate(field)
    return solver.counter.report()


def test_table2_report(benchmark):
    measured = benchmark.pedantic(_measure, rounds=3, iterations=1)

    rows = []
    for p in table2():
        lo, hi = p.printed_total
        got = measured.get(p.name, {}).get("cycles", 0.0)
        rows.append((
            p.name,
            f"{p.merge[0]}-{p.merge[1]}",
            f"{p.flop[0]}-{p.flop[1]}",
            f"{p.sqrt[0]}-{p.sqrt[1]}",
            f"{p.divide[0]}-{p.divide[1]}",
            f"{p.transport[0]}-{p.transport[1]}",
            f"{lo}-{hi}",
            round(got, 1),
        ))
    print()
    print(format_table(
        ["SIMPLE step", "Merge", "FLOP", "sqrt", "div", "xT",
         "paper cycles", "measured cycles"],
        rows,
        title="Table II: cycles per meshpoint for SIMPLE (excluding solver)",
    ))

    paper = {p.name: p.printed_total for p in table2()}
    for phase in ("Momentum", "Continuity", "Field Update"):
        got = measured[phase]["cycles"]
        lo, hi = paper[phase]
        assert got <= 1.5 * hi
        assert got >= 0.1 * lo
