"""Full BiCGStab through the discrete tile simulator (deep validation).

Not a paper figure — the validation layer beneath all of them: a whole
mixed-precision BiCGStab solve in which every SpMV executes the Listing
1 task/thread/FIFO program word-by-word and every inner product's
reduction runs the Fig. 6 AllReduce on the simulated fabric.  Checks the
three execution modes (DES, functional, analytic model) against each
other, and surfaces the active-set engine's observability counters
(mean/peak active routers, skipped idle cycles) so regressions in
simulation sparsity show up next to the numerics.
"""

import numpy as np

from repro.analysis import format_table
from repro.kernels import DESBiCGStab
from repro.perfmodel import WaferPerfModel
from repro.problems import momentum_system
from repro.solver import WaferBiCGStab

SHAPE = (4, 4, 12)


def _des_solve():
    sys_ = momentum_system(SHAPE, reynolds=50.0, dt=0.02)
    solver = DESBiCGStab(sys_.operator)
    res = solver.solve(sys_.b, rtol=5e-3, maxiter=25)
    return sys_, solver, res


def test_bicgstab_des_report(benchmark):
    sys_, solver, res = benchmark.pedantic(_des_solve, rounds=2, iterations=1)
    assert res.converged

    functional = WaferBiCGStab().solve(sys_, rtol=5e-3, maxiter=25)
    rep = solver.report
    model = WaferPerfModel()
    z = SHAPE[2]

    # Engine observability: the persistent SpMV + AllReduce fabrics share
    # one wafer clock, so their stats describe the whole solve's motion.
    engines = [e for e in (solver._spmv_eng, solver._ar_eng) if e is not None]
    stepped = sum(
        e.fabric.stats.cycles - e.fabric.stats.skipped_cycles for e in engines
    )
    skipped = sum(e.fabric.stats.skipped_cycles for e in engines)
    peak_active = max(
        (e.fabric.stats.peak_active_routers for e in engines), default=0
    )
    mean_active = (
        sum(e.fabric.stats.active_router_cycles for e in engines)
        / max(stepped, 1)
    )

    print()
    print(format_table(
        ["quantity", "value"],
        [
            ("mesh", f"{SHAPE} on a {SHAPE[0]}x{SHAPE[1]} fabric"),
            ("DES iterations", res.iterations),
            ("functional iterations", functional.iterations),
            ("max |DES x - functional x|",
             f"{np.max(np.abs(res.x - functional.x)):.2e}"),
            ("simulated SpMV runs", rep.spmv_runs),
            ("simulated AllReduce runs", rep.allreduce_runs),
            ("DES cycles / iteration", round(res.info["cycles_per_iteration"], 0)),
            ("model compute floor (9.5 Z)", round(9.5 * z, 0)),
            ("model AllReduce / iter (7 dots, tiny fabric)",
             round(7 * model.allreduce_cycles((4, 4, z)), 0)),
            ("engine cycles stepped / skipped", f"{stepped} / {skipped}"),
            ("mean active routers / stepped cycle", f"{mean_active:.1f}"),
            ("peak active routers", peak_active),
        ],
        title="BiCGStab with simulated data motion",
    ))

    scale = np.max(np.abs(functional.x)) + 1e-30
    assert np.max(np.abs(res.x - functional.x)) / scale < 0.02
    assert rep.spmv_runs == 2 * res.iterations
    # The active-set engine must actually be skipping idle time on this
    # sparse workload, not sweeping every router every cycle.
    assert skipped > 0
    assert peak_active <= SHAPE[0] * SHAPE[1] * 2
