"""Section IV.2: the 2D mapping (9-point stencil, output-halo exchange).

Regenerates the section's quantitative claims:

* tile memory fits "a sub-block up-to 38x38 in size, corresponding to
  geometries of 22800x22800" (on a 600x600 fabric);
* "When a core holds only an 8x8 region ... (4800x4800 meshpoints), the
  overhead remains less than 20%";

and runs the executable block SpMV against the row-wise reference.
"""

import numpy as np

from repro.analysis import format_table
from repro.kernels import (
    Block2DModel,
    block_spmv,
    max_block_size,
    max_mesh_extent,
)
from repro.problems import Stencil9

RNG = np.random.default_rng(9)


def _block_spmv_run():
    op = Stencil9.from_random((64, 64), rng=RNG)
    v = RNG.standard_normal((64, 64))
    u = block_spmv(op, v, (8, 8))
    ref = op.apply(v)
    assert np.allclose(u, ref)
    return u


def test_spmv2d_report(benchmark):
    benchmark.pedantic(_block_spmv_run, rounds=3, iterations=1)

    rows = []
    for b in (4, 8, 16, 38, 39):
        m = Block2DModel.for_block(b)
        rows.append((
            f"{b}x{b}",
            m.memory_bytes,
            "yes" if m.fits else "NO",
            f"{m.mesh_extent_600}^2",
            f"{m.overhead * 100:.1f}%",
        ))
    print()
    print(format_table(
        ["block", "tile bytes", "fits 48KB", "mesh @600x600 fabric",
         "halo+diag overhead"],
        rows,
        title="2D mapping feasibility (paper section IV.2)",
    ))

    assert max_block_size() == 38
    assert max_mesh_extent(600) == 22800
    assert Block2DModel.for_block(8).overhead < 0.20


def test_spmv2d_des_report(benchmark):
    """The same mapping at word level: the output-halo exchange running
    as a tile program (local FMAs, x-round, y-round)."""
    from repro.kernels import run_spmv2d_des

    op, _, _ = Stencil9.from_random((8, 8), rng=RNG).jacobi_precondition()
    v = 0.1 * RNG.standard_normal((8, 8))

    def run():
        return run_spmv2d_des(op, v, (4, 4))

    u, cycles = benchmark.pedantic(run, rounds=3, iterations=1)
    ref = op.apply(np.asarray(v, np.float16).astype(np.float64))
    err = np.max(np.abs(u - ref))
    print(f"\n2D DES SpMV: 2x2 fabric of 4x4 blocks, {cycles} cycles, "
          f"max |DES - rowwise| = {err:.2e} (fp16 noise)")
    assert err < 1e-2
