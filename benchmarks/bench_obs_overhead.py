"""Observability overhead benchmark: tracer off vs tracer on.

Measures the DES BiCGStab workload of ``bench_des_engine`` (persistent
fabrics, active-set engine, unified wafer timeline) in two
configurations and writes ``BENCH_obs.json``:

``off`` — no :class:`repro.obs.ObsSession` attached.  The entire cost
    of the observability layer in this mode is one ``fabric.obs is
    None`` test per stepped cycle, so cycles simulated per second must
    stay within 5% of the untraced engine (the gate enforced here, and
    the regression guard for ``BENCH_des.json``'s headline).

``on`` — a full :class:`~repro.obs.ObsSession` attached: per-cycle
    fabric metrics (words, queue occupancy over the active set, stall
    samples), phase and iteration spans, telemetry, and a final
    harvest + Chrome-trace export (export timed separately).

Both runs must produce bit-identical numerics and identical per-kernel
cycle counts — observation may never perturb the simulation (gated
here; the deeper engine equivalence lives in
``tests/test_engine_equivalence.py``).

Run directly (``python benchmarks/bench_obs_overhead.py``) or via
``make bench-smoke``; ``--quick`` shrinks the mesh for CI smoke runs.
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.kernels.bicgstab_des import DESBiCGStab
from repro.obs import ObsSession
from repro.problems import momentum_system

SHAPE = (48, 48, 2)
QUICK_SHAPE = (6, 6, 8)
RTOL = 5e-3
MAXITER = 25

#: Maximum tolerated slowdown of the detached (tracer-off) hot path,
#: and of the measured run against an existing BENCH_des.json baseline.
MAX_OFF_SLOWDOWN = 0.05


def _fabric_cycles(solver: DESBiCGStab) -> int:
    """Summed cycles over the persistent fabrics — the same definition
    ``bench_des_engine`` uses for its cycles/sec headline (both fabrics
    advance through every timeline cycle, so this is ~2x the timeline).
    """
    return sum(
        eng.fabric.stats.cycles
        for eng in (solver._spmv_eng, solver._ar_eng)
        if eng is not None
    )


def _measure(op, b, obs: ObsSession | None) -> dict:
    """One warmed, measured solve; returns timing plus checkables."""
    solver = DESBiCGStab(op, engine="active", persistent=True, obs=obs)
    solver.solve(b, rtol=RTOL, maxiter=MAXITER)  # build + warm engines
    before = _fabric_cycles(solver)
    t0 = time.perf_counter()
    res = solver.solve(b, rtol=RTOL, maxiter=MAXITER)
    wall = time.perf_counter() - t0
    cycles = _fabric_cycles(solver) - before
    out = {
        "wall_seconds": round(wall, 4),
        "fabric_cycles_simulated": cycles,
        "cycles_per_second": round(cycles / wall, 1),
        "iterations": res.iterations,
        "_res": res,
        "_report": solver.report,
    }
    return out


def run(shape=SHAPE, out_path: str | Path = "BENCH_obs.json") -> dict:
    sys_ = momentum_system(shape, reynolds=50.0, dt=0.02)
    op, b = sys_.operator, sys_.b

    off = _measure(op, b, obs=None)

    obs = ObsSession()
    on = _measure(op, b, obs=obs)
    obs.harvest()
    t0 = time.perf_counter()
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = obs.write_chrome_trace(Path(tmp) / "trace.json")
        trace_bytes = trace_path.stat().st_size
    export_seconds = time.perf_counter() - t0

    res_off, res_on = off.pop("_res"), on.pop("_res")
    rep_off, rep_on = off.pop("_report"), on.pop("_report")
    equivalence = {
        "x_identical": bool(np.array_equal(res_off.x, res_on.x)),
        "residuals_identical": res_off.residuals == res_on.residuals,
        # Both reports accumulate two solves (warm-up + measured).
        "spmv_cycles_match": rep_off.spmv_cycles == rep_on.spmv_cycles,
        "allreduce_cycles_match":
            rep_off.allreduce_cycles == rep_on.allreduce_cycles,
        "phase_spans_tile_timeline":
            sum(obs.phase_totals().values()) == rep_on.total_cycles,
    }

    on["spans_recorded"] = len(obs.tracer.spans)
    on["metrics_recorded"] = len(obs.metrics.as_dict())
    on["export_seconds"] = round(export_seconds, 4)
    on["trace_json_bytes"] = trace_bytes

    overhead_on = off["wall_seconds"] and (
        on["wall_seconds"] / off["wall_seconds"] - 1.0
    )
    result = {
        "benchmark": "obs_overhead",
        "workload": {
            "mesh": list(shape),
            "tiles_per_fabric": shape[0] * shape[1],
            "rtol": RTOL,
            "maxiter": MAXITER,
            "iterations": res_on.iterations,
        },
        "off": off,
        "on": on,
        "tracing_overhead_fraction": round(overhead_on, 4),
        "equivalence": equivalence,
    }

    # Gate the detached hot path against the engine benchmark's
    # baseline when one exists for the same workload.
    baseline = Path(out_path).parent / "BENCH_des.json"
    if baseline.exists():
        base = json.loads(baseline.read_text())
        if base.get("workload", {}).get("mesh") == list(shape):
            base_cps = base["active"]["cycles_per_second"]
            slowdown = 1.0 - off["cycles_per_second"] / base_cps
            result["baseline_cycles_per_second"] = base_cps
            result["off_slowdown_vs_baseline"] = round(slowdown, 4)
    Path(out_path).write_text(json.dumps(result, indent=2) + "\n")
    return result


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help=f"small mesh {QUICK_SHAPE} for smoke runs")
    ap.add_argument("--out", default="BENCH_obs.json")
    args = ap.parse_args(argv)
    shape = QUICK_SHAPE if args.quick else SHAPE
    result = run(shape=shape, out_path=args.out)
    print(json.dumps(result, indent=2))
    eq = result["equivalence"]
    if not all(eq.values()):
        print("EQUIVALENCE FAILURE under observation:", eq)
        return 1
    slowdown = result.get("off_slowdown_vs_baseline")
    if slowdown is not None and slowdown > MAX_OFF_SLOWDOWN:
        print(
            f"HOT-PATH REGRESSION: tracer-off run is {slowdown:.1%} slower "
            f"than the BENCH_des.json baseline (gate: {MAX_OFF_SLOWDOWN:.0%})"
        )
        return 1
    print(
        f"\ntracer off {result['off']['cycles_per_second']:.0f} cycles/s, "
        f"on {result['on']['cycles_per_second']:.0f} cycles/s "
        f"({result['tracing_overhead_fraction']:+.1%} when attached); "
        f"{result['on']['spans_recorded']} spans, "
        f"{result['on']['trace_json_bytes']} bytes of trace JSON"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
