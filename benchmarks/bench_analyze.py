"""Static-analyzer cost benchmark: every pass on the big fabrics.

The analyzer runs on every ``analyze=True`` build and inside ``make
check``, so its cost must stay far below a simulated run and must not
blow up as fabrics grow.  This benchmark times each of the nine passes
(routing, flow, tasks, dsr, races, sram, precision, cdg, contract)
individually, plus one full ``analyze_program`` sweep, on the two
largest shipped program shapes:

* the paper's headline 48x48 problem under the 2D block mapping
  (16x16 = 256 tiles, 9-leg stencil program on every tile), and
* a 512-tile (32x16 mesh) 3D SpMV mapping.

Writes ``BENCH_analyze.json`` with per-pass wall seconds and fails if
any program analyzes dirty (the passes must stay free of false
positives at scale).  Run directly
(``python benchmarks/bench_analyze.py``) or via ``make bench-smoke``;
``--quick`` shrinks both meshes for CI smoke runs.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.wse.analyze import analyze_program
from repro.wse.analyze.analyzer import ALL_PASSES

SPMV2D_SHAPE = (48, 48)
SPMV2D_BLOCK = (3, 3)
SPMV3D_SHAPE = (32, 16, 2)

QUICK_SPMV2D_SHAPE = (12, 12)
QUICK_SPMV2D_BLOCK = (3, 3)
QUICK_SPMV3D_SHAPE = (8, 8, 4)


def _build_spmv2d(shape, block_shape):
    from repro.kernels.spmv2d_des import build_spmv2d_fabric
    from repro.problems.stencil9 import Stencil9

    op, _b, _dinv = Stencil9.from_random(shape).jacobi_precondition()
    fabric, _programs = build_spmv2d_fabric(
        op, np.zeros(op.shape), block_shape
    )
    return fabric


def _build_spmv3d(shape):
    from repro.kernels.spmv3d import build_spmv_fabric
    from repro.problems.stencil7 import Stencil7

    op, _b, _dinv = Stencil7.from_random(shape).jacobi_precondition()
    fabric, _programs = build_spmv_fabric(op, np.zeros(op.shape))
    return fabric


def _count_instructions(fabric) -> int:
    n = 0
    for y in range(fabric.height):
        for x in range(fabric.width):
            core = fabric.core(x, y)
            decl = getattr(core, "program_decl", None)
            if decl is not None:
                n += sum(1 for _ in decl.instructions())
    return n


def _measure(name: str, builder) -> dict:
    t0 = time.perf_counter()
    fabric = builder()
    build_seconds = time.perf_counter() - t0

    per_pass = {}
    diagnostics = 0
    for pass_name in ALL_PASSES:
        t0 = time.perf_counter()
        report = analyze_program(fabric, passes=(pass_name,))
        per_pass[pass_name] = round(time.perf_counter() - t0, 4)
        diagnostics += len(report)

    t0 = time.perf_counter()
    full = analyze_program(fabric)
    full_seconds = time.perf_counter() - t0

    return {
        "program": name,
        "tiles": fabric.width * fabric.height,
        "declared_instructions": _count_instructions(fabric),
        "build_seconds": round(build_seconds, 4),
        "pass_seconds": per_pass,
        "all_passes_seconds": round(full_seconds, 4),
        "diagnostics": diagnostics + len(full),
        "clean": full.ok and diagnostics == 0,
    }


def run(quick: bool = False,
        out_path: str | Path = "BENCH_analyze.json") -> dict:
    shape2d = QUICK_SPMV2D_SHAPE if quick else SPMV2D_SHAPE
    block2d = QUICK_SPMV2D_BLOCK if quick else SPMV2D_BLOCK
    shape3d = QUICK_SPMV3D_SHAPE if quick else SPMV3D_SHAPE

    programs = [
        _measure(
            f"spmv2d-{shape2d[0]}x{shape2d[1]}-b{block2d[0]}x{block2d[1]}",
            lambda: _build_spmv2d(shape2d, block2d),
        ),
        _measure(
            f"spmv3d-{shape3d[0]}x{shape3d[1]}x{shape3d[2]}",
            lambda: _build_spmv3d(shape3d),
        ),
    ]
    result = {
        "benchmark": "analyze_cost",
        "quick": quick,
        "passes": list(ALL_PASSES),
        "programs": programs,
    }
    Path(out_path).write_text(json.dumps(result, indent=2) + "\n")
    return result


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="small meshes for smoke runs")
    ap.add_argument("--out", default="BENCH_analyze.json")
    args = ap.parse_args(argv)
    result = run(quick=args.quick, out_path=args.out)
    print(json.dumps(result, indent=2))
    dirty = [p["program"] for p in result["programs"] if not p["clean"]]
    if dirty:
        print(f"ANALYSIS NOT CLEAN on: {', '.join(dirty)}")
        return 1
    for p in result["programs"]:
        slowest = max(p["pass_seconds"], key=p["pass_seconds"].get)
        print(
            f"{p['program']}: {p['tiles']} tiles, "
            f"{p['declared_instructions']} declared instructions, "
            f"all passes in {p['all_passes_seconds']}s "
            f"(slowest pass: {slowest} {p['pass_seconds'][slowest]}s)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
