"""Replay engine benchmark: trace-compiled replay vs live stepping.

Measures cycles simulated per wall-clock second on the ``bench_des``
workload (a full mixed-precision BiCGStab solve with every SpMV and
AllReduce executed on the word-level fabric simulator, mesh 48 x 48 x 2)
for three engines and writes the results to ``BENCH_replay.json``:

``reference`` — the naive full-fabric sweep (every tile, every cycle).

``active`` — the event-driven active-set engine (persistent fabrics,
    dirty sets, fused stepping, O(1) cycle skipping).

``replay`` — the trace-compiled engine from ``repro.wse.replay``: the
    first execution runs on the live active engine with a recorder
    attached, capturing the complete event schedule as an SSA value
    graph; every later execution replays that schedule as a few hundred
    batched NumPy array ops without stepping the simulator at all.

Each engine gets one warm-up solve (for replay this is where the
recording happens) and one measured solve; the headline
``speedup_cycles_per_second`` is the steady-state ratio between replay
and active.  The equivalence block asserts, across all three engines:
bit-identical solution vectors, identical residual histories, identical
per-kernel cycle counts, and identical per-link word counts on every
router of both fabrics.  Any mismatch exits non-zero.

Run directly (``python benchmarks/bench_replay.py``) or via
``make bench-smoke``; ``--quick`` shrinks the mesh for CI smoke runs
(the 10x headline is only expected at full size, where the schedule is
large enough to amortize the recording).
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.kernels.bicgstab_des import DESBiCGStab
from repro.problems import momentum_system

SHAPE = (48, 48, 2)
QUICK_SHAPE = (6, 6, 8)
RTOL = 5e-3
MAXITER = 25


def _link_words(solver: DESBiCGStab) -> dict:
    """Per-router words_moved for every link of both persistent fabrics."""
    out = {}
    for label, eng in (("spmv", solver._spmv_eng),
                       ("allreduce", solver._ar_eng)):
        if eng is None:
            continue
        fabric = eng.fabric
        out[label] = {
            f"{x},{y}": fabric.router(x, y).words_moved
            for y in range(fabric.height)
            for x in range(fabric.width)
        }
    return out


def _fabric_cycles(solver: DESBiCGStab) -> int:
    total = 0
    for eng in (solver._spmv_eng, solver._ar_eng):
        if eng is not None:
            total += eng.fabric.stats.cycles
    return total


def _kernel_cycles(rep) -> dict:
    return {
        "spmv_cycles": rep.spmv_cycles,
        "allreduce_cycles": rep.allreduce_cycles,
        "axpy_cycles": rep.axpy_cycles,
        "dot_local_cycles": rep.dot_local_cycles,
        "spmv_runs": rep.spmv_runs,
        "allreduce_runs": rep.allreduce_runs,
    }


def run_engine(engine: str, op, b) -> dict:
    """One warm-up solve (engine construction; for replay, recording),
    then one measured steady-state solve."""
    solver = DESBiCGStab(op, engine=engine, persistent=True)
    t0 = time.perf_counter()
    res1 = solver.solve(b, rtol=RTOL, maxiter=MAXITER)
    setup = time.perf_counter() - t0
    snap = {
        "x": np.asarray(res1.x, dtype=np.float64).copy(),
        "residuals": list(res1.residuals),
        "kernel_cycles": _kernel_cycles(solver.report),
        "link_words": _link_words(solver),
    }
    before = _fabric_cycles(solver)
    t0 = time.perf_counter()
    res2 = solver.solve(b, rtol=RTOL, maxiter=MAXITER)
    wall = time.perf_counter() - t0
    cycles = _fabric_cycles(solver) - before
    stats = {
        "wall_seconds": round(wall, 4),
        "setup_seconds": round(setup, 4),
        "fabric_cycles_simulated": cycles,
        "cycles_per_second": round(cycles / wall, 1),
        "iterations": res2.iterations,
    }
    if engine == "replay":
        sessions = {}
        for label, eng in (("spmv", solver._spmv_eng),
                           ("allreduce", solver._ar_eng)):
            sess = getattr(eng, "replay", None) if eng is not None else None
            if sess is not None:
                sessions[label] = {
                    "records": sess.records,
                    "replays": sess.replays,
                    "fallbacks": sess.fallbacks,
                    "invalidations": sess.invalidations,
                    "schedule_nodes": (
                        sess.schedule.n_nodes
                        if sess.schedule is not None else 0
                    ),
                    "schedule_groups": (
                        len(sess.schedule.groups)
                        if sess.schedule is not None else 0
                    ),
                    "diagnostics": list(sess.diagnostics),
                }
        stats["sessions"] = sessions
        stats["note"] = (
            "first solve records the event schedule on the live active "
            "engine; measured solve replays it as batched NumPy ops"
        )
    return {"stats": stats, "snap": snap}


def _equivalence(snaps: dict) -> dict:
    base = snaps["reference"]
    eq = {}
    for engine in ("active", "replay"):
        s = snaps[engine]
        eq[f"x_identical_{engine}"] = bool(np.array_equal(
            base["x"].view(np.uint64), s["x"].view(np.uint64)))
        eq[f"residuals_identical_{engine}"] = (
            base["residuals"] == s["residuals"])
        eq[f"kernel_cycles_identical_{engine}"] = (
            base["kernel_cycles"] == s["kernel_cycles"])
        eq[f"link_words_identical_{engine}"] = (
            base["link_words"] == s["link_words"])
    return eq


def run(shape=SHAPE, out_path: str | Path = "BENCH_replay.json") -> dict:
    sys_ = momentum_system(shape, reynolds=50.0, dt=0.02)
    op, b = sys_.operator, sys_.b

    runs, snaps = {}, {}
    for engine in ("reference", "active", "replay"):
        r = run_engine(engine, op, b)
        runs[engine] = r["stats"]
        snaps[engine] = r["snap"]

    equivalence = _equivalence(snaps)
    nx, ny, nz = shape
    result = {
        "benchmark": "bicgstab_replay_engine",
        "workload": {
            "mesh": list(shape),
            "fabric": f"{nx}x{ny} tiles (spmv) + {ny}x{nx} tiles (allreduce)",
            "tiles_per_fabric": nx * ny,
            "rtol": RTOL,
            "maxiter": MAXITER,
            "iterations": runs["active"]["iterations"],
        },
        "reference": runs["reference"],
        "active": runs["active"],
        "replay": runs["replay"],
        "speedup_cycles_per_second": round(
            runs["replay"]["cycles_per_second"]
            / runs["active"]["cycles_per_second"], 2),
        "speedup_vs_reference": round(
            runs["replay"]["cycles_per_second"]
            / runs["reference"]["cycles_per_second"], 2),
        "equivalence": equivalence,
    }
    Path(out_path).write_text(json.dumps(result, indent=2) + "\n")
    return result


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help=f"small mesh {QUICK_SHAPE} for smoke runs")
    ap.add_argument("--out", default="BENCH_replay.json")
    args = ap.parse_args(argv)
    shape = QUICK_SHAPE if args.quick else SHAPE
    result = run(shape=shape, out_path=args.out)
    print(json.dumps(result, indent=2))
    eq = result["equivalence"]
    if not all(eq.values()):
        print("EQUIVALENCE FAILURE between engines:", eq)
        return 1
    print(
        f"\n{result['workload']['fabric']}: "
        f"{result['replay']['cycles_per_second']:.0f} cycles/s (replay) vs "
        f"{result['active']['cycles_per_second']:.0f} cycles/s (active) = "
        f"{result['speedup_cycles_per_second']:.1f}x "
        f"({result['speedup_vs_reference']:.1f}x vs reference)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
