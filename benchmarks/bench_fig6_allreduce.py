"""Fig. 6 / section IV.3: the scalar AllReduce.

Regenerates: (a) the routing-DAG construction and a live discrete
simulation of the collective on a Fig. 6-sized fabric (X=8, Y=8) and
larger; (b) the latency model's full-fabric prediction — under 1.5
microseconds, about 10% over the mesh diameter — for ~357,000
participating cores.
"""

import numpy as np
import pytest

from repro.analysis import format_table
from repro.wse import (
    CS1,
    allreduce_latency_cycles,
    allreduce_latency_seconds,
    simulate_allreduce,
)

RNG = np.random.default_rng(3)


def test_fig6_simulation(benchmark):
    vals = RNG.standard_normal((16, 16)).astype(np.float32)
    result, cycles = benchmark.pedantic(
        simulate_allreduce, args=(vals,), rounds=3, iterations=1
    )
    assert result == pytest.approx(float(vals.sum()), abs=1e-4)

    rows = []
    for w, h in [(8, 8), (16, 16), (24, 24), (32, 16)]:
        v = RNG.standard_normal((h, w)).astype(np.float32)
        r, c = simulate_allreduce(v)
        model = allreduce_latency_cycles(w, h, stage_overhead=0)
        rows.append((f"{w}x{h}", w * h, c, model, (w - 1) + (h - 1)))
    print()
    print(format_table(
        ["fabric", "cores", "DES cycles", "model cycles (no overhead)",
         "diameter"],
        rows,
        title="Fig. 6: AllReduce on simulated fabrics",
    ))


def test_cs1_allreduce_latency(benchmark):
    t = benchmark(allreduce_latency_seconds)
    g = CS1.geometry
    cycles = allreduce_latency_cycles(g.fabric_width, g.fabric_height)
    print()
    print(format_table(
        ["quantity", "paper", "measured"],
        [
            ("participating cores", "~380,000 (fabric)", g.fabric_tiles),
            ("AllReduce latency (us)", "< 1.5", round(t * 1e6, 3)),
            ("cycles / diameter", "~1.1", round(cycles / g.diameter, 3)),
        ],
        title="full-wafer scalar AllReduce",
    ))
    assert t < 1.5e-6
    assert 1.02 < cycles / g.diameter < 1.25
