"""Fig. 1: flops per word (memory, interconnect) machine-balance chart.

Regenerates the data series behind the figure: the widening gap for
conventional systems over time and the CS-1 point at the bottom of the
scale.  The CS-1 entries are computed from the paper's machine
description; the historical entries are documented order-of-magnitude
reconstructions (see repro.perfmodel.balance).
"""

from repro.analysis import ascii_plot, format_table
from repro.perfmodel import balance_table, cs1_balance


def test_fig1_report(benchmark):
    table = benchmark(balance_table)

    print()
    print(format_table(
        ["system", "year", "flops/word mem", "flops/word net",
         "flops@mem latency", "flops@net latency"],
        [(e.system, e.year, e.flops_per_word_memory,
          e.flops_per_word_interconnect, e.flops_to_cover_memory_latency,
          e.flops_to_cover_network_latency) for e in table],
        title="Fig. 1 data: machine balance (8-byte words)",
    ))
    history = [e for e in table if not e.system.startswith("Cerebras")]
    print()
    print(ascii_plot(
        [e.year for e in history],
        {
            "memory": [e.flops_per_word_memory for e in history],
            "interconnect": [e.flops_per_word_interconnect for e in history],
        },
        logy=True,
        title="flops per word, conventional systems (CS-1 sits at ~2.7/4.0)",
    ))

    cs1 = cs1_balance()
    assert cs1.flops_per_word_memory < 3.0
    assert cs1.flops_per_word_interconnect == 4.0
    modern = [e for e in history if e.year >= 2016]
    assert all(e.flops_per_word_memory > 100 for e in modern)
